package serve

// Tests for the durable-store seam: commit-on-fit, eviction faulting
// models back in, warm-start, the undurable-eviction warning, and the
// 503 contract for models mid-rehydration.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcnmf/internal/mat"
	mstore "hpcnmf/internal/store"
)

// tinyBudget is a store budget that fits exactly one 24×4 test model
// (modelBytes(24,4,32) ≈ 7.8 KiB), so adding a second always evicts.
const tinyBudget = 10 << 10

// TestEvictionFaultsBackFromStore is the eviction + warm-start
// interplay pin: the LRU evicts a durable model, and the next
// projection against it faults it back in from the store instead of
// 404ing — eviction is no longer data loss.
func TestEvictionFaultsBackFromStore(t *testing.T) {
	ds := mstore.NewMemory()
	s := New(Options{Durable: ds, StoreBudget: tinyBudget, MaxDelay: -1})
	defer s.Close()
	if err := s.AddModel("victim", testBasis(24, 4, 1)); err != nil {
		t.Fatal(err)
	}
	// Project once so we can compare coefficients after rehydration.
	col := testColumn(24, 7)
	before, err := s.project(context.Background(), "victim", col)
	if err != nil {
		t.Fatal(err)
	}
	wantH := append([]float64(nil), before.h...)
	putReq(before)

	// A second model blows the budget: "victim" is evicted.
	if err := s.AddModel("usurper", testBasis(24, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if s.HasModel("victim") {
		t.Fatal("victim still resident — budget did not evict")
	}
	if got := s.met.storeEvictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := s.met.storeEvictionsUndurable.Value(); got != 0 {
		t.Fatalf("undurable evictions = %d, want 0 (model was committed)", got)
	}

	// The next projection faults it back in and answers identically.
	after, err := s.project(context.Background(), "victim", col)
	if err != nil {
		t.Fatalf("project after eviction: %v", err)
	}
	defer putReq(after)
	if !s.HasModel("victim") {
		t.Fatal("victim not resident after rehydration")
	}
	if got := s.met.storeRehydrations.Value(); got != 1 {
		t.Fatalf("rehydrations = %d, want 1", got)
	}
	if len(after.h) != len(wantH) {
		t.Fatalf("coefficients len %d, want %d", len(after.h), len(wantH))
	}
	for i := range wantH {
		if math.Float64bits(after.h[i]) != math.Float64bits(wantH[i]) {
			t.Fatalf("h[%d] = %v before eviction, %v after rehydration (not bitwise identical)", i, wantH[i], after.h[i])
		}
	}
}

// TestUndurableEvictionWarns pins the data-loss signal: with no
// durable store, evicting a model increments the undurable counter
// and logs a warning naming the model.
func TestUndurableEvictionWarns(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	s := New(Options{StoreBudget: tinyBudget, MaxDelay: -1, Logger: logger})
	defer s.Close()
	if err := s.AddModel("doomed", testBasis(24, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("other", testBasis(24, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if got := s.met.storeEvictionsUndurable.Value(); got != 1 {
		t.Fatalf("undurable evictions = %d, want 1", got)
	}
	logged := buf.String()
	if !strings.Contains(logged, "doomed") || !strings.Contains(logged, "no durable backing") {
		t.Fatalf("eviction warning missing or anonymous: %q", logged)
	}
	// And the projection against the lost model is a 404-style miss.
	if _, err := s.project(context.Background(), "doomed", testColumn(24, 3)); !errors.Is(err, notFoundError{"doomed"}) {
		t.Fatalf("project(lost model) = %v, want notFoundError", err)
	}
}

// blockingStore wraps a ModelStore and parks Get until released, so a
// test can hold a model mid-rehydration.
type blockingStore struct {
	mstore.ModelStore
	enter   chan struct{} // closed... signaled when a Get arrives
	release chan struct{}
	once    sync.Once
}

func (b *blockingStore) Get(id string) (*mstore.Model, error) {
	b.once.Do(func() { close(b.enter) })
	<-b.release
	return b.ModelStore.Get(id)
}

// TestRehydrating503: while one request is faulting a model in, a
// concurrent request gets errRehydrating, which the HTTP layer maps
// to 503 + Retry-After — not 404, the model is not gone.
func TestRehydrating503(t *testing.T) {
	mem := mstore.NewMemory()
	bs := &blockingStore{ModelStore: mem, enter: make(chan struct{}), release: make(chan struct{})}
	s := New(Options{Durable: bs, NoWarmStart: true, MaxDelay: -1})
	defer s.Close()
	// Commit a model to the underlying store only (bypassing AddModel,
	// which would also make it resident).
	if err := mem.Put(&mstore.Model{ID: "cold", W: testBasis(24, 4, 1)}); err != nil {
		t.Fatal(err)
	}

	firstDone := make(chan error, 1)
	go func() {
		r, err := s.project(context.Background(), "cold", testColumn(24, 5))
		if err == nil {
			putReq(r)
		}
		firstDone <- err
	}()
	<-bs.enter // the first request is now parked inside the store Get

	// A concurrent projection must see the rehydration in progress.
	ts := httptest.NewServer(s)
	defer ts.Close()
	body, _ := json.Marshal(ProjectRequest{Model: "cold", Column: testColumn(24, 6)})
	resp, err := http.Post(ts.URL+"/v1/project", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("project mid-rehydration = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 mid-rehydration carries no Retry-After")
	}

	close(bs.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("rehydrating request failed: %v", err)
	}
	// Once resident, requests serve normally.
	resp2, err := http.Post(ts.URL+"/v1/project", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("project after rehydration = %d, want 200", resp2.StatusCode)
	}
}

// TestWarmStartScan: a fresh server over a populated store serves its
// whole catalog immediately, minus entries the filter rejects and
// minus quarantined corruption.
func TestWarmStartScan(t *testing.T) {
	ds := mstore.NewMemory()
	for _, id := range []string{"a", "b", "skip-me"} {
		if err := ds.Put(&mstore.Model{ID: id, W: testBasis(24, 4, int64(len(id)))}); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Options{
		Durable:    ds,
		MaxDelay:   -1,
		WarmFilter: func(id string) bool { return !strings.HasPrefix(id, "skip-") },
	})
	defer s.Close()
	if !s.HasModel("a") || !s.HasModel("b") {
		t.Fatalf("warm start missed committed models: %v", s.Models())
	}
	if s.HasModel("skip-me") {
		t.Fatal("warm start ignored the filter")
	}
	if got := s.met.storeWarmStarts.Value(); got != 2 {
		t.Fatalf("warm_starts = %d, want 2", got)
	}
	// The filtered model still faults in on demand.
	r, err := s.project(context.Background(), "skip-me", testColumn(24, 9))
	if err != nil {
		t.Fatalf("project(filtered model): %v", err)
	}
	putReq(r)
	if !s.HasModel("skip-me") {
		t.Fatal("filtered model did not fault in on demand")
	}
}

// TestFitCommitsDurably: the async fit path writes through to the
// durable store before the job reports done, and the durable copy
// matches the resident one bitwise.
func TestFitCommitsDurably(t *testing.T) {
	ds := mstore.NewMemory()
	s := New(Options{Durable: ds, MaxDelay: -1})
	defer s.Close()
	spec := FitRequest{Model: "fitted", Rows: 12, Cols: 8, K: 2, MaxIter: 10, Seed: 42}
	spec.Data = make([]float64, spec.Rows*spec.Cols)
	for i := range spec.Data {
		spec.Data[i] = float64(i%7) + 0.5
	}
	id, err := s.jobs.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForJob(t, s, id)
	dm, err := ds.Get("fitted")
	if err != nil {
		t.Fatalf("fit did not commit to the durable store: %v", err)
	}
	var resident *mat.Dense
	if err := s.st.withModel("fitted", func(m *model) error { resident = m.w.Clone(); return nil }); err != nil {
		t.Fatal(err)
	}
	if dm.W.Rows != resident.Rows || dm.W.Cols != resident.Cols {
		t.Fatalf("durable basis %dx%d, resident %dx%d", dm.W.Rows, dm.W.Cols, resident.Rows, resident.Cols)
	}
	for i := range resident.Data {
		if math.Float64bits(dm.W.Data[i]) != math.Float64bits(resident.Data[i]) {
			t.Fatalf("durable and resident bases differ at %d", i)
		}
	}
	if got := s.met.storeCommits.Value(); got != 1 {
		t.Fatalf("commits = %d, want 1", got)
	}
}

// TestDeleteRemovesDurable: DELETE removes both copies, so the model
// cannot resurrect through warm-start or fault-in.
func TestDeleteRemovesDurable(t *testing.T) {
	ds := mstore.NewMemory()
	s := New(Options{Durable: ds, MaxDelay: -1})
	if err := s.AddModel("gone", testBasis(24, 4, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/gone", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
	if _, err := ds.Get("gone"); !errors.Is(err, mstore.ErrNotFound) {
		t.Fatalf("durable entry survived DELETE: %v", err)
	}
	ts.Close()
	s.Close()
	// A restart over the same store must not resurrect it.
	s2 := New(Options{Durable: ds, MaxDelay: -1})
	defer s2.Close()
	if s2.HasModel("gone") {
		t.Fatal("deleted model resurrected on warm-start")
	}
}

// waitForJob polls a fit job to its terminal state.
func waitForJob(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		info, ok := s.jobs.get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch info.State {
		case JobDone:
			return
		case JobFailed:
			t.Fatalf("job failed: %s", info.Error)
		}
		select {
		case <-deadline:
			t.Fatalf("job %s did not finish", id)
		case <-time.After(2 * time.Millisecond):
		}
	}
}
