package serve

import (
	"errors"
	"sync"
	"time"

	"hpcnmf/internal/core"
	"hpcnmf/internal/mat"
	"hpcnmf/internal/trace"
)

// errBusy is the projection backpressure signal: the model's pending
// queue is full. The HTTP layer maps it to 429 + Retry-After.
var errBusy = errors.New("serve: projection queue full")

// errClosing is returned for submits that race a model's shutdown or
// eviction; mapped to 503.
var errClosing = errors.New("serve: model is shutting down")

// projReq carries one column through the batching loop. Carriers are
// recycled through a sync.Pool and own their buffers, so the
// steady-state request path allocates nothing: col and h grow to the
// model's m and k once and are reused verbatim afterwards. done is a
// 1-buffered channel reused across lives — the batcher sends exactly
// one token per submitted request, the waiter receives exactly one.
type projReq struct {
	col   []float64 // input column (length m)
	h     []float64 // output coefficients (length k)
	resid float64   // relative residual ‖c − W·h‖/‖c‖
	err   error
	done  chan struct{}
	// sc is the requesting span's identity (zero when tracing is off):
	// the batcher parents its batch span under it, linking the HTTP
	// request track to the batcher track.
	sc trace.SpanContext
}

var reqPool = sync.Pool{New: func() any { return &projReq{done: make(chan struct{}, 1)} }}

// getReq draws a carrier and loads the input column into it.
func getReq(col []float64) *projReq {
	r := reqPool.Get().(*projReq)
	r.err = nil
	r.resid = 0
	r.sc = trace.SpanContext{}
	if cap(r.col) < len(col) {
		r.col = make([]float64, len(col))
	}
	r.col = r.col[:len(col)]
	copy(r.col, col)
	return r
}

// putReq returns a carrier to the pool. The caller must be done with
// r.h (copy it out first).
func putReq(r *projReq) { reqPool.Put(r) }

// batcher coalesces concurrent projection requests against one model
// into stacked NNLS solves. One goroutine (loop) owns the solver
// resources — Projector, workspace, tracer — in the same single-owner
// discipline as the rank goroutines of the compute core, so the hot
// path takes no locks beyond the queue mutex.
//
// Flush policy: a batch is cut when maxBatch columns are pending, or
// maxDelay after the batch's first column arrived, whichever comes
// first (maxDelay = 0 flushes whatever is queued immediately — the
// lowest-latency, least-coalescing setting).
type batcher struct {
	proj     *core.Projector
	ws       *mat.Workspace
	maxBatch int
	maxDelay time.Duration
	queueCap int
	met      *serveMetrics
	tc       *trace.Tracer // may be nil (tracing off)

	mu     sync.Mutex
	cond   *sync.Cond // wakes the loop when work arrives
	queue  []*projReq
	closed bool

	full  chan struct{} // pulses when the queue reaches maxBatch
	done  chan struct{} // loop exit
	timer *time.Timer

	resid []float64 // per-flush residual scratch, cap maxBatch
}

// startBatcher builds a batcher around an existing projector and
// launches its loop.
func startBatcher(proj *core.Projector, maxBatch int, maxDelay time.Duration, queueCap int, met *serveMetrics, tc *trace.Tracer) *batcher {
	b := &batcher{
		proj:     proj,
		ws:       mat.NewWorkspace(),
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		queueCap: queueCap,
		met:      met,
		tc:       tc,
		full:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		timer:    time.NewTimer(time.Hour),
		resid:    make([]float64, maxBatch),
	}
	if !b.timer.Stop() {
		<-b.timer.C
	}
	b.cond = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// submit enqueues a group of requests atomically: either all are
// accepted or none (so a multi-column request cannot be half-served).
// Callers hold the store's read lock, which excludes close.
func (b *batcher) submit(reqs ...*projReq) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosing
	}
	if len(b.queue)+len(reqs) > b.queueCap {
		b.mu.Unlock()
		return errBusy
	}
	b.queue = append(b.queue, reqs...)
	n := len(b.queue)
	b.mu.Unlock()
	b.cond.Signal()
	if n >= b.maxBatch {
		select {
		case b.full <- struct{}{}:
		default:
		}
	}
	return nil
}

// close stops the loop after it drains the queue: every request
// submitted before close is answered. Idempotent.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.cond.Signal()
	select {
	case b.full <- struct{}{}:
	default:
	}
	<-b.done
}

// loop is the batching goroutine: wait for work, optionally linger up
// to maxDelay to coalesce more columns, cut a batch of at most
// maxBatch, flush, repeat. On close it keeps cutting batches until the
// queue is empty, so shutdown drains rather than drops.
func (b *batcher) loop() {
	defer close(b.done)
	batch := make([]*projReq, 0, b.maxBatch)
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.queue) == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		if b.maxDelay > 0 && len(b.queue) < b.maxBatch && !b.closed {
			// Linger for stragglers: release the lock and wait for the
			// queue to fill or the delay to lapse.
			b.mu.Unlock()
			select {
			case <-b.full:
			default:
			}
			b.timer.Reset(b.maxDelay)
			select {
			case <-b.full:
				if !b.timer.Stop() {
					<-b.timer.C
				}
			case <-b.timer.C:
			}
			b.mu.Lock()
		}
		n := len(b.queue)
		if n > b.maxBatch {
			n = b.maxBatch
		}
		batch = append(batch[:0], b.queue[:n]...)
		rest := copy(b.queue, b.queue[n:])
		for i := rest; i < len(b.queue); i++ {
			b.queue[i] = nil
		}
		b.queue = b.queue[:rest]
		b.mu.Unlock()
		b.flush(batch)
	}
}

// flush runs one stacked NNLS solve over the batch and answers every
// request. One trace span covers the batch (column count as payload),
// a nested one the solve itself; the projector adds kernel spans under
// the solve. When the batch carries request span contexts, the batch
// span is parented under the first request's span — a coalesced batch
// has many requesters but one causal chain, and the trace shows the
// others' requests overlapping it on the request track.
func (b *batcher) flush(batch []*projReq) {
	n := len(batch)
	if n == 0 {
		return
	}
	start := time.Now()
	var sp trace.Span
	if sc := batch[0].sc; sc.Valid() {
		sp = b.tc.BeginChildArg(sc, trace.CatPhase, "serve.batch", "cols", int64(n))
	} else {
		sp = b.tc.BeginArg(trace.CatPhase, "serve.batch", "cols", int64(n))
	}
	m, k := b.proj.Dims()

	cmat := b.ws.Get(m, n)
	for j, r := range batch {
		for i := 0; i < m; i++ {
			cmat.Data[i*n+j] = r.col[i]
		}
	}
	dst := b.ws.Get(k, n)
	ssp := b.tc.Begin(trace.CatPhase, "serve.solve")
	_, err := b.proj.ProjectInto(dst, cmat, b.resid[:n])
	ssp.End()
	b.met.solves.Inc()

	for j, r := range batch {
		if err != nil {
			r.err = err
		} else {
			if cap(r.h) < k {
				r.h = make([]float64, k)
			}
			r.h = r.h[:k]
			for i := 0; i < k; i++ {
				r.h[i] = dst.Data[i*n+j]
			}
			r.resid = b.resid[j]
		}
		r.done <- struct{}{}
	}
	b.ws.Put(dst)
	b.ws.Put(cmat)

	b.met.batches.Inc()
	b.met.batchCols.Observe(float64(n))
	b.met.batchLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		b.met.projectErrors.Add(int64(n))
	}
	sp.End()
}
