package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate
// format (1-based indices, "%%MatrixMarket matrix coordinate real
// general" header), the interchange format the sparse-NMF community
// uses for datasets like Webbase.
func (a *CSR) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[p]+1, a.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate-format matrix.
// Only the "matrix coordinate real general" flavor is supported.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Header line.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.ToLower(sc.Text())
	if !strings.HasPrefix(header, "%%matrixmarket") || !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	// Skip comments; read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	coords := make([]Coord, 0, nnz)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %w", fields[1], err)
		}
		v := 1.0
		if len(fields) >= 3 {
			if v, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", fields[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside declared %dx%d", i, j, rows, cols)
		}
		coords = append(coords, Coord{Row: i - 1, Col: j - 1, Val: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(coords) != nnz {
		return nil, fmt.Errorf("sparse: declared %d entries, found %d", nnz, len(coords))
	}
	return FromCoords(rows, cols, coords), nil
}
