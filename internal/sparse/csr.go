// Package sparse implements compressed sparse row (CSR) matrices and
// the sparse-times-dense kernels the NMF algorithms need. A sparse
// data matrix A participates in exactly two products per alternating
// iteration — A·Hᵀ (tall output) and Wᵀ·A (wide output) — so those two
// kernels, plus construction, transposition, slicing and generation,
// are the whole surface.
package sparse

import (
	"fmt"
	"sort"
	"sync"

	"hpcnmf/internal/mat"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// The multiply kernels treat a CSR as immutable once it is first used
// in a product: the Wᵀ·A kernel lazily caches a column-major index of
// the entries (see spmm.go), so mutate RowPtr/ColIdx/Val only during
// construction, before the first multiply.
type CSR struct {
	Rows, Cols int
	// RowPtr has length Rows+1; row i's entries live at indices
	// [RowPtr[i], RowPtr[i+1]) of ColIdx and Val.
	RowPtr []int
	// ColIdx holds the column of each stored entry, sorted within a row.
	ColIdx []int
	// Val holds the value of each stored entry.
	Val []float64

	// cscOnce/cscIdx cache the column-major traversal order built on
	// first use by the Wᵀ·A kernel (amortized across the iterations of
	// a factorization run, which multiply by the same tile every time).
	cscOnce sync.Once
	cscIdx  *cscIndex
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// Coord is a coordinate-format entry used to build CSR matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// FromCoords builds a CSR matrix from coordinate entries. Duplicate
// coordinates are summed in input order. Entries are sorted; zero
// values are kept (callers may want explicit zeros), and duplicates
// collapsing to zero remain stored.
//
// Ordering is a two-pass counting sort — stable by column, then by
// row — so construction is O(nnz + rows + cols) instead of the
// O(nnz·log nnz) comparison sort the seed used; on bulk loads
// (generators, Matrix Market files) the sort dominated construction.
func FromCoords(rows, cols int, entries []Coord) *CSR {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: coordinate (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols))
		}
	}
	nnz := len(entries)
	// Pass 1: stable counting sort by column.
	count := make([]int, max(rows, cols)+1)
	for _, e := range entries {
		count[e.Col+1]++
	}
	for c := 0; c < cols; c++ {
		count[c+1] += count[c]
	}
	byCol := make([]Coord, nnz)
	for _, e := range entries {
		byCol[count[e.Col]] = e
		count[e.Col]++
	}
	// Pass 2: stable counting sort by row. Stability preserves the
	// column order within each row, so the result is (row, col) sorted
	// with duplicates adjacent and still in input order.
	for i := range count {
		count[i] = 0
	}
	for _, e := range byCol {
		count[e.Row+1]++
	}
	for r := 0; r < rows; r++ {
		count[r+1] += count[r]
	}
	sorted := make([]Coord, nnz)
	for _, e := range byCol {
		sorted[count[e.Row]] = e
		count[e.Row]++
	}
	a := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j = j + 1
		}
		a.ColIdx = append(a.ColIdx, sorted[i].Col)
		a.Val = append(a.Val, v)
		a.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for i := 0; i < rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(d *mat.Dense) *CSR {
	a := &CSR{Rows: d.Rows, Cols: d.Cols, RowPtr: make([]int, d.Rows+1)}
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				a.ColIdx = append(a.ColIdx, j)
				a.Val = append(a.Val, v)
			}
		}
		a.RowPtr[i+1] = len(a.Val)
	}
	return a
}

// ToDense expands the matrix to dense form.
func (a *CSR) ToDense() *mat.Dense {
	d := mat.NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := d.Row(i)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			row[a.ColIdx[p]] = a.Val[p]
		}
	}
	return d
}

// At returns entry (i, j), zero if not stored. O(log nnz(row i)).
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	p := lo + sort.SearchInts(a.ColIdx[lo:hi], j)
	if p < hi && a.ColIdx[p] == j {
		return a.Val[p]
	}
	return 0
}

// T returns the transpose as a new CSR matrix (a counting sort over
// columns; O(nnz + rows + cols)).
func (a *CSR) T() *CSR {
	t := &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: make([]int, a.Cols+1)}
	t.ColIdx = make([]int, a.NNZ())
	t.Val = make([]float64, a.NNZ())
	for _, c := range a.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := a.ColIdx[p]
			q := next[c]
			t.ColIdx[q] = i
			t.Val[q] = a.Val[p]
			next[c]++
		}
	}
	return t
}

// SubmatrixRows returns rows [r0, r1) as a new CSR matrix.
func (a *CSR) SubmatrixRows(r0, r1 int) *CSR {
	if r0 < 0 || r1 < r0 || r1 > a.Rows {
		panic(fmt.Sprintf("sparse: SubmatrixRows [%d,%d) of %d rows", r0, r1, a.Rows))
	}
	lo, hi := a.RowPtr[r0], a.RowPtr[r1]
	b := &CSR{
		Rows:   r1 - r0,
		Cols:   a.Cols,
		RowPtr: make([]int, r1-r0+1),
		ColIdx: append([]int(nil), a.ColIdx[lo:hi]...),
		Val:    append([]float64(nil), a.Val[lo:hi]...),
	}
	for i := r0; i <= r1; i++ {
		b.RowPtr[i-r0] = a.RowPtr[i] - lo
	}
	return b
}

// Submatrix returns the block rows [r0,r1) × cols [c0,c1), with
// column indices shifted to the block's local frame.
func (a *CSR) Submatrix(r0, r1, c0, c1 int) *CSR {
	if r0 < 0 || r1 < r0 || r1 > a.Rows || c0 < 0 || c1 < c0 || c1 > a.Cols {
		panic("sparse: Submatrix out of range")
	}
	b := &CSR{Rows: r1 - r0, Cols: c1 - c0, RowPtr: make([]int, r1-r0+1)}
	for i := r0; i < r1; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		// Binary search the column window within the sorted row.
		s := lo + sort.SearchInts(a.ColIdx[lo:hi], c0)
		e := lo + sort.SearchInts(a.ColIdx[lo:hi], c1)
		for p := s; p < e; p++ {
			b.ColIdx = append(b.ColIdx, a.ColIdx[p]-c0)
			b.Val = append(b.Val, a.Val[p])
		}
		b.RowPtr[i-r0+1] = len(b.Val)
	}
	return b
}

// MulBt returns C = A·Bᵀ where B is dense n2×k and A is sparse m×n2;
// the result is dense m×k. This is the A·Hᵀ product of the ANLS
// iteration. Cost: 2·nnz(A)·k flops.
func (a *CSR) MulBt(b *mat.Dense) *mat.Dense {
	c := mat.NewDense(a.Rows, b.Cols)
	a.MulBtTo(c, b, nil)
	return c
}

// MulHt returns C = A·Hᵀ where H is dense k×n (row-major, so column j
// of H is strided). To keep the inner loop contiguous this transposes
// H once (k·n copies) and calls MulBt. Cost: 2·nnz(A)·k flops.
func (a *CSR) MulHt(h *mat.Dense) *mat.Dense {
	if a.Cols != h.Cols {
		panic(fmt.Sprintf("sparse: MulHt dimension mismatch A %dx%d, H %dx%d", a.Rows, a.Cols, h.Rows, h.Cols))
	}
	return a.MulBt(h.T())
}

// MulWtA returns C = Wᵀ·A where W is dense m×k and A is sparse m×n;
// the result is dense k×n. This is the Wᵀ·A product of the ANLS
// iteration. Cost: 2·nnz(A)·k flops.
func (a *CSR) MulWtA(w *mat.Dense) *mat.Dense {
	c := mat.NewDense(w.Cols, a.Cols)
	a.MulWtATo(c, w, nil)
	return c
}

// SquaredFrobeniusNorm returns ‖A‖_F².
func (a *CSR) SquaredFrobeniusNorm() float64 {
	s := 0.0
	for _, v := range a.Val {
		s += v * v
	}
	return s
}

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// Equal reports whether a and b represent the same matrix (same shape
// and identical stored patterns/values within tol). Patterns must
// match exactly; this is intended for tests.
func (a *CSR) Equal(b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for p := range a.Val {
		if a.ColIdx[p] != b.ColIdx[p] {
			return false
		}
		d := a.Val[p] - b.Val[p]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
