package sparse

import (
	"math"

	"hpcnmf/internal/rng"
)

// RandomER generates an Erdős–Rényi sparse matrix: each entry is
// nonzero independently with probability density, with value uniform
// in [0, 1). This is the paper's SSYN generator (§6.1.1).
//
// Sampling uses geometric skips over the flattened index space, so the
// cost is O(nnz) rather than O(rows·cols).
func RandomER(rows, cols int, density float64, stream *rng.Stream) *CSR {
	if density <= 0 || rows == 0 || cols == 0 {
		return &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	}
	if density >= 1 {
		density = 1
	}
	a := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	total := uint64(rows) * uint64(cols)
	// Geometric inter-arrival sampling: skip ~Exp(1/density) positions
	// between nonzeros. Using the inverse-CDF of the geometric
	// distribution keeps entries sorted by construction.
	idx := uint64(0)
	logq := math.Log1p(-density)
	for {
		u := stream.Float64()
		if u == 0 {
			u = 0.5 / (1 << 53)
		}
		skip := uint64(math.Log(u) / logq)
		idx += skip
		if idx >= total {
			break
		}
		r := int(idx / uint64(cols))
		c := int(idx % uint64(cols))
		a.ColIdx = append(a.ColIdx, c)
		a.Val = append(a.Val, stream.Float64())
		a.RowPtr[r+1]++
		idx++
	}
	for i := 0; i < rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a
}

// RandomPowerLaw generates the adjacency matrix of a directed graph
// with skewed (power-law-like) degree distribution via a
// preferential-attachment process: node t attaches outDeg edges, each
// endpoint chosen preferentially (probability ∝ current in-degree+1).
// Edge weights are 1. This stands in for the Webbase crawl graph
// (§6.1.1): squarish, sparse, heavy-tailed degrees.
func RandomPowerLaw(nodes, outDeg int, stream *rng.Stream) *CSR {
	if nodes <= 0 {
		return &CSR{RowPtr: make([]int, 1)}
	}
	// endpoints is a multiset of target nodes; sampling uniformly from
	// it realizes preferential attachment.
	endpoints := make([]int, 0, nodes*(outDeg+1))
	type edge struct{ from, to int }
	edges := make([]edge, 0, nodes*outDeg)
	for t := 0; t < nodes; t++ {
		endpoints = append(endpoints, t) // the +1 smoothing term
		for e := 0; e < outDeg; e++ {
			var to int
			if t == 0 {
				to = 0
			} else {
				to = endpoints[stream.Intn(len(endpoints))]
			}
			edges = append(edges, edge{from: t, to: to})
			endpoints = append(endpoints, to)
		}
	}
	coords := make([]Coord, 0, len(edges))
	for _, e := range edges {
		coords = append(coords, Coord{Row: e.from, Col: e.to, Val: 1})
	}
	a := FromCoords(nodes, nodes, coords)
	// Collapse duplicate edges (summed by FromCoords) back to weight 1
	// so the matrix is a plain adjacency matrix.
	for i := range a.Val {
		if a.Val[i] > 1 {
			a.Val[i] = 1
		}
	}
	return a
}
