package sparse

import (
	"math"
	"testing"

	"hpcnmf/internal/mat"
	"hpcnmf/internal/par"
	"hpcnmf/internal/rng"
)

// skewCase builds matrices whose shape stresses the locality
// partitioner: empty rows, single dense rows dominating the nnz
// balance, single-column tiles, and power-law degree skew.
type skewCase struct {
	name string
	a    *CSR
}

func skewCases(t *testing.T) []skewCase {
	t.Helper()
	s := rng.New(123)
	var cases []skewCase

	cases = append(cases, skewCase{"ER-small", RandomER(40, 31, 0.15, s)})
	cases = append(cases, skewCase{"ER-pooled", RandomER(800, 600, 0.07, s)}) // ≈34k nnz, above spSerialNNZ
	cases = append(cases, skewCase{"powerlaw", RandomPowerLaw(300, 6, s)})

	// Every third row empty.
	var coords []Coord
	for i := 0; i < 50; i++ {
		if i%3 == 0 {
			continue
		}
		for j := 0; j < 20; j += 2 {
			coords = append(coords, Coord{Row: i, Col: j, Val: s.Float64()})
		}
	}
	cases = append(cases, skewCase{"empty-rows", FromCoords(50, 20, coords)})

	// One fully dense row in an otherwise nearly-empty matrix: an
	// nnz-balanced split must cut around it, a row split would not.
	coords = coords[:0]
	for j := 0; j < 500; j++ {
		coords = append(coords, Coord{Row: 7, Col: j, Val: s.Float64()})
	}
	coords = append(coords, Coord{Row: 0, Col: 3, Val: 1}, Coord{Row: 19, Col: 499, Val: 2})
	cases = append(cases, skewCase{"dense-row", FromCoords(20, 500, coords)})

	// Single-column tile (and its transpose shape, a single-row tile).
	coords = coords[:0]
	for i := 0; i < 30; i += 2 {
		coords = append(coords, Coord{Row: i, Col: 0, Val: s.Float64()})
	}
	cases = append(cases, skewCase{"single-col", FromCoords(30, 1, coords)})
	coords = coords[:0]
	for j := 0; j < 30; j += 3 {
		coords = append(coords, Coord{Row: 0, Col: j, Val: s.Float64()})
	}
	cases = append(cases, skewCase{"single-row", FromCoords(1, 30, coords)})

	// Fully empty tile.
	cases = append(cases, skewCase{"empty", FromCoords(12, 9, nil)})
	return cases
}

func denseRand(r, c int, s *rng.Stream) *mat.Dense {
	d := mat.NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = 2*s.Float64() - 1
	}
	return d
}

func bitwiseEqual(t *testing.T, name string, got, want *mat.Dense) {
	t.Helper()
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %g, want %g (bitwise)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestSpMMBitwiseVsReference pins the locality-partitioned kernels
// against the scalar references bit for bit, across skewed shapes,
// k values covering all unroll/strip remainders, and pool sizes
// including the serial path.
func TestSpMMBitwiseVsReference(t *testing.T) {
	s := rng.New(99)
	pools := []*par.Pool{nil, par.NewPool(2), par.NewPool(5)}
	for _, p := range pools {
		defer p.Close()
	}
	for _, tc := range skewCases(t) {
		for _, k := range []int{1, 3, 5, 17, 50} {
			b := denseRand(tc.a.Cols, k, s)
			w := denseRand(tc.a.Rows, k, s)

			wantBt := mat.NewDense(tc.a.Rows, k)
			RefMulBtTo(wantBt, tc.a, b)
			wantWtA := mat.NewDense(k, tc.a.Cols)
			RefMulWtATo(wantWtA, tc.a, w)

			for pi, p := range pools {
				gotBt := mat.NewDense(tc.a.Rows, k)
				tc.a.MulBtTo(gotBt, b, p)
				bitwiseEqual(t, tc.name+"/MulBtTo", gotBt, wantBt)

				gotWtA := mat.NewDense(k, tc.a.Cols)
				tc.a.MulWtATo(gotWtA, w, p)
				bitwiseEqual(t, tc.name+"/MulWtATo", gotWtA, wantWtA)
				_ = pi
			}
		}
	}
}

// TestMulWtAToWSDirtyWorkspace checks that a workspace buffer left
// dirty by a previous use cannot leak into the result, and that the
// workspace path matches the allocating path bit for bit.
func TestMulWtAToWSDirtyWorkspace(t *testing.T) {
	s := rng.New(7)
	a := RandomER(120, 90, 0.1, s)
	w := denseRand(a.Rows, 13, s)
	want := mat.NewDense(13, a.Cols)
	RefMulWtATo(want, a, w)

	ws := mat.NewWorkspace()
	dirty := ws.Get(a.Cols, 13)
	for i := range dirty.Data {
		dirty.Data[i] = math.NaN()
	}
	ws.Put(dirty)

	got := mat.NewDense(13, a.Cols)
	a.MulWtAToWS(got, w, nil, ws)
	bitwiseEqual(t, "MulWtAToWS", got, want)
}

// TestNNZBounds checks the prefix-sum partitioner invariants:
// monotone boundaries, full coverage, no empty ranges beyond the
// guaranteed first/last, and balance on a skewed distribution.
func TestNNZBounds(t *testing.T) {
	// One heavy row among trivial ones.
	ptr := []int{0, 1, 2, 1003, 1004, 1005, 1006}
	for _, parts := range []int{1, 2, 3, 4, 8, 16} {
		bounds := nnzBounds(ptr, parts)
		if bounds[0] != 0 || bounds[len(bounds)-1] != len(ptr)-1 {
			t.Fatalf("parts=%d: bounds %v do not cover [0,%d]", parts, bounds, len(ptr)-1)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("parts=%d: bounds %v not strictly increasing", parts, bounds)
			}
		}
		if len(bounds)-1 > parts {
			t.Fatalf("parts=%d: %d ranges produced", parts, len(bounds)-1)
		}
	}
	// Balance: an even nnz distribution must split into near-equal parts.
	even := make([]int, 101)
	for i := range even {
		even[i] = i * 10
	}
	bounds := nnzBounds(even, 4)
	if len(bounds) != 5 {
		t.Fatalf("even split gave bounds %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if n := even[bounds[i]] - even[bounds[i-1]]; n < 200 || n > 300 {
			t.Fatalf("even split range %d carries %d nnz: bounds %v", i, n, bounds)
		}
	}
	// Degenerate: all nnz in one row still yields a valid cover.
	onerow := []int{0, 0, 500, 500}
	bounds = nnzBounds(onerow, 4)
	if bounds[0] != 0 || bounds[len(bounds)-1] != 3 {
		t.Fatalf("one-row matrix gave bounds %v", bounds)
	}
}

// TestStripWidth pins the k-strip policy: no striping for panels
// within budget, spMinStripK floor, budget-sized strips otherwise.
func TestStripWidth(t *testing.T) {
	if got := stripWidth(100, 50); got != 50 {
		t.Errorf("small panel: stripWidth = %d, want 50", got)
	}
	if got := stripWidth(0, 50); got != 50 {
		t.Errorf("empty panel: stripWidth = %d, want 50", got)
	}
	if got := stripWidth(1<<24, 50); got != spMinStripK {
		t.Errorf("huge panel: stripWidth = %d, want floor %d", got, spMinStripK)
	}
	if got := stripWidth(1<<17, 50); got != spPanelWords/(1<<17) {
		t.Errorf("large panel: stripWidth = %d, want %d", got, spPanelWords/(1<<17))
	}
}

// TestSpMMStriped forces the k-strip path by shrinking the panel
// budget (a var for exactly this purpose) and checks bitwise
// agreement with the unstriped reference.
func TestSpMMStriped(t *testing.T) {
	prev := spPanelWords
	spPanelWords = 1 << 16
	defer func() { spPanelWords = prev }()
	s := rng.New(31)
	// b panel is 2100×40 = 84000 words > the shrunk budget: strips engage.
	a := RandomER(150, 2100, 0.02, s)
	b := denseRand(a.Cols, 40, s)
	w := denseRand(a.Rows, 40, s)

	want := mat.NewDense(a.Rows, 40)
	RefMulBtTo(want, a, b)
	got := mat.NewDense(a.Rows, 40)
	a.MulBtTo(got, b, nil)
	bitwiseEqual(t, "MulBtTo/striped", got, want)

	// w panel for WtA is a.Rows×k = 150×40, within budget — stretch
	// rows instead so the CSC-side panel exceeds it.
	a2 := RandomER(2100, 150, 0.02, s)
	w2 := denseRand(a2.Rows, 40, s)
	want2 := mat.NewDense(40, a2.Cols)
	RefMulWtATo(want2, a2, w2)
	got2 := mat.NewDense(40, a2.Cols)
	a2.MulWtATo(got2, w2, nil)
	bitwiseEqual(t, "MulWtATo/striped", got2, want2)
	_ = w
}

// TestCSCIndexRoundTrip checks the cached column-major index against
// the transpose: same entries, ascending rows within each column.
func TestCSCIndexRoundTrip(t *testing.T) {
	s := rng.New(55)
	for _, tc := range skewCases(t) {
		idx := tc.a.csc()
		tr := tc.a.T()
		if len(idx.colPtr) != tc.a.Cols+1 {
			t.Fatalf("%s: colPtr length %d", tc.name, len(idx.colPtr))
		}
		for j := 0; j <= tc.a.Cols; j++ {
			if idx.colPtr[j] != tr.RowPtr[j] {
				t.Fatalf("%s: colPtr[%d] = %d, want %d", tc.name, j, idx.colPtr[j], tr.RowPtr[j])
			}
		}
		for q := range idx.val {
			if idx.rowIdx[q] != tr.ColIdx[q] || idx.val[q] != tr.Val[q] {
				t.Fatalf("%s: csc entry %d = (%d,%g), want (%d,%g)",
					tc.name, q, idx.rowIdx[q], idx.val[q], tr.ColIdx[q], tr.Val[q])
			}
		}
		// Cached: second call returns the same index.
		if tc.a.csc() != idx {
			t.Fatalf("%s: csc() rebuilt the cached index", tc.name)
		}
	}
	_ = s
}

// TestSpMMAcrossISAs sweeps every supported non-FMA dispatch level:
// the sparse kernels inherit the bitwise contract from the axpy
// primitives, so results must be identical across levels.
func TestSpMMAcrossISAs(t *testing.T) {
	prev := mat.ISA()
	defer func() {
		if err := mat.SetISA(prev); err != nil {
			t.Fatalf("restoring ISA %q: %v", prev, err)
		}
	}()
	s := rng.New(42)
	a := RandomPowerLaw(200, 5, s)
	b := denseRand(a.Cols, 17, s)
	w := denseRand(a.Rows, 17, s)

	if err := mat.SetISA("generic"); err != nil {
		t.Fatal(err)
	}
	wantBt := mat.NewDense(a.Rows, 17)
	a.MulBtTo(wantBt, b, nil)
	wantWtA := mat.NewDense(17, a.Cols)
	a.MulWtATo(wantWtA, w, nil)

	for _, isa := range mat.SupportedISAs() {
		if isa == "avx2+fma" {
			continue // breaks the bitwise contract by design
		}
		if err := mat.SetISA(isa); err != nil {
			t.Fatalf("SetISA(%q): %v", isa, err)
		}
		got := mat.NewDense(a.Rows, 17)
		a.MulBtTo(got, b, nil)
		bitwiseEqual(t, isa+"/MulBtTo", got, wantBt)
		got2 := mat.NewDense(17, a.Cols)
		a.MulWtATo(got2, w, nil)
		bitwiseEqual(t, isa+"/MulWtATo", got2, wantWtA)
	}
}

// FuzzCSRTileRoundTrip drives Submatrix tiling with fuzzed tile
// boundaries over a skewed matrix: reassembling the four quadrant
// tiles must reproduce the original, and each tile's kernels must
// match the references bit for bit.
func FuzzCSRTileRoundTrip(f *testing.F) {
	f.Add(uint16(10), uint16(10), int64(1))
	f.Add(uint16(0), uint16(0), int64(2))
	f.Add(uint16(199), uint16(199), int64(3))
	f.Add(uint16(7), uint16(150), int64(4))
	f.Fuzz(func(t *testing.T, rcut, ccut uint16, seed int64) {
		s := rng.New(uint64(seed))
		a := RandomPowerLaw(60, 4, s)
		r := int(rcut) % (a.Rows + 1)
		c := int(ccut) % (a.Cols + 1)
		tiles := []*CSR{
			a.Submatrix(0, r, 0, c), a.Submatrix(0, r, c, a.Cols),
			a.Submatrix(r, a.Rows, 0, c), a.Submatrix(r, a.Rows, c, a.Cols),
		}
		// Reassemble through coordinates and compare.
		var coords []Coord
		offs := [][2]int{{0, 0}, {0, c}, {r, 0}, {r, c}}
		for ti, tile := range tiles {
			if len(tile.RowPtr) != tile.Rows+1 || tile.RowPtr[tile.Rows] != tile.NNZ() {
				t.Fatalf("tile %d structurally invalid", ti)
			}
			for i := 0; i < tile.Rows; i++ {
				for p := tile.RowPtr[i]; p < tile.RowPtr[i+1]; p++ {
					coords = append(coords, Coord{
						Row: i + offs[ti][0], Col: tile.ColIdx[p] + offs[ti][1], Val: tile.Val[p],
					})
				}
			}
		}
		back := FromCoords(a.Rows, a.Cols, coords)
		if !a.Equal(back, 0) {
			t.Fatal("tile reassembly changed the matrix")
		}
		// Kernels on each tile agree with the scalar references.
		for ti, tile := range tiles {
			if tile.Rows == 0 || tile.Cols == 0 {
				continue
			}
			b := denseRand(tile.Cols, 5, s)
			w := denseRand(tile.Rows, 5, s)
			want := mat.NewDense(tile.Rows, 5)
			RefMulBtTo(want, tile, b)
			got := mat.NewDense(tile.Rows, 5)
			tile.MulBtTo(got, b, nil)
			for i := range got.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("tile %d MulBtTo diverges at %d", ti, i)
				}
			}
			want2 := mat.NewDense(5, tile.Cols)
			RefMulWtATo(want2, tile, w)
			got2 := mat.NewDense(5, tile.Cols)
			tile.MulWtATo(got2, w, nil)
			for i := range got2.Data {
				if math.Float64bits(got2.Data[i]) != math.Float64bits(want2.Data[i]) {
					t.Fatalf("tile %d MulWtATo diverges at %d", ti, i)
				}
			}
		}
	})
}
