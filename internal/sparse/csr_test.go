package sparse

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"hpcnmf/internal/mat"
	"hpcnmf/internal/rng"
)

func randomCSR(rows, cols int, density float64, seed uint64) *CSR {
	return RandomER(rows, cols, density, rng.New(seed))
}

func randomDense(rows, cols int, seed uint64) *mat.Dense {
	m := mat.NewDense(rows, cols)
	m.RandomUniform(rng.New(seed))
	return m
}

func TestFromCoordsBasic(t *testing.T) {
	a := FromCoords(3, 4, []Coord{{0, 1, 2}, {2, 3, 5}, {0, 0, 1}})
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d", a.NNZ())
	}
	if a.At(0, 1) != 2 || a.At(2, 3) != 5 || a.At(0, 0) != 1 || a.At(1, 1) != 0 {
		t.Fatal("FromCoords entries wrong")
	}
}

func TestFromCoordsSumsDuplicates(t *testing.T) {
	a := FromCoords(2, 2, []Coord{{0, 0, 1}, {0, 0, 2.5}})
	if a.NNZ() != 1 || a.At(0, 0) != 3.5 {
		t.Fatalf("duplicates not summed: nnz=%d v=%v", a.NNZ(), a.At(0, 0))
	}
}

func TestFromCoordsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range coord did not panic")
		}
	}()
	FromCoords(2, 2, []Coord{{2, 0, 1}})
}

func TestDenseRoundTrip(t *testing.T) {
	d := randomDense(7, 5, 1)
	// Zero out some entries to create sparsity.
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			if (i+j)%3 == 0 {
				d.Set(i, j, 0)
			}
		}
	}
	a := FromDense(d)
	if !a.ToDense().Equal(d, 0) {
		t.Fatal("FromDense/ToDense round trip failed")
	}
}

func TestTranspose(t *testing.T) {
	a := randomCSR(20, 15, 0.2, 2)
	at := a.T()
	if at.Rows != 15 || at.Cols != 20 || at.NNZ() != a.NNZ() {
		t.Fatalf("transpose shape/nnz wrong: %dx%d nnz=%d", at.Rows, at.Cols, at.NNZ())
	}
	if !at.ToDense().Equal(a.ToDense().T(), 0) {
		t.Fatal("transpose values wrong")
	}
	if !a.T().T().Equal(a, 0) {
		t.Fatal("double transpose not identity")
	}
}

func TestSubmatrixRows(t *testing.T) {
	a := randomCSR(10, 8, 0.3, 3)
	b := a.SubmatrixRows(3, 7)
	if !b.ToDense().Equal(a.ToDense().SubmatrixRows(3, 7), 0) {
		t.Fatal("SubmatrixRows mismatch vs dense")
	}
}

func TestSubmatrixBlock(t *testing.T) {
	a := randomCSR(12, 9, 0.4, 4)
	b := a.Submatrix(2, 9, 3, 8)
	if !b.ToDense().Equal(a.ToDense().Submatrix(2, 9, 3, 8), 0) {
		t.Fatal("Submatrix mismatch vs dense")
	}
}

func TestSubmatrixTiling(t *testing.T) {
	// Cutting a matrix into a 2x2 block grid and reassembling the
	// dense forms must reproduce the original (the operation the 2D
	// distribution performs).
	a := randomCSR(11, 7, 0.35, 5)
	d := a.ToDense()
	blocks := [][]*mat.Dense{
		{a.Submatrix(0, 5, 0, 3).ToDense(), a.Submatrix(0, 5, 3, 7).ToDense()},
		{a.Submatrix(5, 11, 0, 3).ToDense(), a.Submatrix(5, 11, 3, 7).ToDense()},
	}
	re := mat.StackRows(mat.StackCols(blocks[0]...), mat.StackCols(blocks[1]...))
	if !re.Equal(d, 0) {
		t.Fatal("2x2 block tiling does not reassemble the matrix")
	}
}

func TestMulBtAgainstDense(t *testing.T) {
	a := randomCSR(9, 6, 0.5, 6)
	b := randomDense(6, 4, 7) // cols x k
	got := a.MulBt(b)
	want := mat.Mul(a.ToDense(), b)
	if got.MaxDiff(want) > 1e-12 {
		t.Fatalf("MulBt mismatch: %g", got.MaxDiff(want))
	}
}

func TestMulHtAgainstDense(t *testing.T) {
	a := randomCSR(9, 6, 0.5, 8)
	h := randomDense(4, 6, 9) // k x n
	got := a.MulHt(h)
	want := mat.MulABt(a.ToDense(), h)
	if got.MaxDiff(want) > 1e-12 {
		t.Fatalf("MulHt mismatch: %g", got.MaxDiff(want))
	}
}

func TestMulWtAAgainstDense(t *testing.T) {
	a := randomCSR(9, 6, 0.5, 10)
	w := randomDense(9, 4, 11) // m x k
	got := a.MulWtA(w)
	want := mat.MulAtB(w, a.ToDense())
	if got.MaxDiff(want) > 1e-12 {
		t.Fatalf("MulWtA mismatch: %g", got.MaxDiff(want))
	}
}

func TestSpMMProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := randomCSR(8, 7, 0.3, seed)
		h := randomDense(3, 7, seed+1)
		w := randomDense(8, 3, seed+2)
		d := a.ToDense()
		return a.MulHt(h).MaxDiff(mat.MulABt(d, h)) < 1e-12 &&
			a.MulWtA(w).MaxDiff(mat.MulAtB(w, d)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredFrobeniusNorm(t *testing.T) {
	a := randomCSR(10, 10, 0.2, 12)
	want := a.ToDense().SquaredFrobeniusNorm()
	if got := a.SquaredFrobeniusNorm(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("‖A‖² = %v, want %v", got, want)
	}
}

func TestRandomERDensity(t *testing.T) {
	rows, cols, density := 500, 400, 0.01
	a := randomCSR(rows, cols, density, 13)
	expected := float64(rows*cols) * density
	got := float64(a.NNZ())
	if got < expected*0.8 || got > expected*1.2 {
		t.Fatalf("ER nnz = %v, expected ~%v", got, expected)
	}
	// CSR invariants: sorted columns within rows, monotone RowPtr.
	checkCSRInvariants(t, a)
}

func TestRandomERDeterministic(t *testing.T) {
	a := randomCSR(100, 80, 0.05, 14)
	b := randomCSR(100, 80, 0.05, 14)
	if !a.Equal(b, 0) {
		t.Fatal("RandomER is not deterministic for equal seeds")
	}
}

func TestRandomERFullDensity(t *testing.T) {
	a := randomCSR(5, 5, 1.0, 15)
	if a.NNZ() != 25 {
		t.Fatalf("density 1 produced %d/25 entries", a.NNZ())
	}
}

func TestRandomERZeroDensity(t *testing.T) {
	a := randomCSR(5, 5, 0, 16)
	if a.NNZ() != 0 {
		t.Fatalf("density 0 produced %d entries", a.NNZ())
	}
}

func TestRandomPowerLawShape(t *testing.T) {
	a := RandomPowerLaw(200, 4, rng.New(17))
	if a.Rows != 200 || a.Cols != 200 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	if a.NNZ() == 0 || a.NNZ() > 200*5 {
		t.Fatalf("nnz = %d out of expected range", a.NNZ())
	}
	checkCSRInvariants(t, a)
	// Degree skew: the max in-degree should well exceed the mean —
	// that is what distinguishes the webbase-like generator from ER.
	indeg := make([]int, 200)
	for _, c := range a.ColIdx {
		indeg[c]++
	}
	maxDeg, sum := 0, 0
	for _, d := range indeg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / 200
	if float64(maxDeg) < 4*mean {
		t.Fatalf("max in-degree %d vs mean %.1f: no skew", maxDeg, mean)
	}
}

func checkCSRInvariants(t *testing.T, a *CSR) {
	t.Helper()
	if len(a.RowPtr) != a.Rows+1 || a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != a.NNZ() {
		t.Fatal("RowPtr endpoints wrong")
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			t.Fatalf("RowPtr not monotone at %d", i)
		}
		for p := a.RowPtr[i] + 1; p < a.RowPtr[i+1]; p++ {
			if a.ColIdx[p-1] >= a.ColIdx[p] {
				t.Fatalf("columns not strictly sorted in row %d", i)
			}
		}
	}
	for _, c := range a.ColIdx {
		if c < 0 || c >= a.Cols {
			t.Fatalf("column index %d out of range", c)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := randomCSR(15, 12, 0.25, 18)
	var buf bytes.Buffer
	if err := a.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 0) {
		t.Fatal("MatrixMarket round trip changed the matrix")
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrixMarket(bytes.NewBufferString("not a matrix")); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := ReadMatrixMarket(bytes.NewBufferString("%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n")); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	if _, err := ReadMatrixMarket(bytes.NewBufferString("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n")); err == nil {
		t.Fatal("wrong entry count accepted")
	}
}
