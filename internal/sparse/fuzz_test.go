package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser: arbitrary input must yield
// a clean error or a structurally valid matrix, never a panic, and
// valid matrices must survive a write/read round trip.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n3 4 2\n1 2 0.5\n3 4 -1e3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n1 1 0\n")
	f.Add("")
	f.Add("garbage\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		// Structural invariants of anything accepted.
		if len(a.RowPtr) != a.Rows+1 || a.RowPtr[a.Rows] != a.NNZ() {
			t.Fatalf("invalid CSR from input %q", input)
		}
		for _, c := range a.ColIdx {
			if c < 0 || c >= a.Cols {
				t.Fatalf("column %d out of range from %q", c, input)
			}
		}
		// Round trip.
		var buf bytes.Buffer
		if err := a.WriteMatrixMarket(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if !a.Equal(b, 0) {
			t.Fatal("round trip changed matrix")
		}
	})
}
