package sparse

import (
	"bytes"
	"strings"
	"testing"

	"hpcnmf/internal/rng"
)

func TestMatrixMarketCSRRoundTrip(t *testing.T) {
	a := RandomER(17, 11, 0.2, rng.New(31))
	var buf bytes.Buffer
	if err := a.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatalf("shape changed: %dx%d nnz=%d -> %dx%d nnz=%d",
			a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			t.Fatalf("RowPtr[%d] changed", i)
		}
	}
	for p := range a.Val {
		if a.ColIdx[p] != b.ColIdx[p] || a.Val[p] != b.Val[p] {
			t.Fatalf("entry %d changed: (%d, %g) -> (%d, %g)",
				p, a.ColIdx[p], a.Val[p], b.ColIdx[p], b.Val[p])
		}
	}
}

func TestMatrixMarketEmptyMatrixRoundTrip(t *testing.T) {
	a := FromCoords(5, 4, nil)
	var buf bytes.Buffer
	if err := a.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != 5 || b.Cols != 4 || b.NNZ() != 0 {
		t.Fatalf("empty matrix became %dx%d nnz=%d", b.Rows, b.Cols, b.NNZ())
	}
}

func TestMatrixMarketRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"junk header":       "hello world\n1 1 1\n1 1 1\n",
		"wrong flavor":      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"bad size line":     "%%MatrixMarket matrix coordinate real general\n2 x 1\n1 1 1\n",
		"bad row index":     "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
		"bad value":         "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"row out of range":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"col out of range":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 3 1\n",
		"zero-based index":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"short entry line":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"truncated entries": "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1\n2 2 2\n",
		"extra entries":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 2\n",
	}
	for name, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
