package sparse

import "hpcnmf/internal/mat"

// The retained scalar reference kernels. They define the accumulation
// order the production kernels of spmm.go must reproduce bit for bit
// (for any pool size, strip width, and non-FMA ISA level), anchor the
// differential tests, and serve as the "naive" side of the kernel
// benchmarks. Shapes follow MulBtTo/MulWtATo; no validation is done.

// RefMulBtTo computes C = A·B (C is a.Rows×b.Cols, B is a.Cols×k) by
// streaming each sparse row's entries in ascending column order.
func RefMulBtTo(c *mat.Dense, a *CSR, b *mat.Dense) {
	for i := 0; i < a.Rows; i++ {
		crow := c.Row(i)
		for t := range crow {
			crow[t] = 0
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			v := a.Val[p]
			brow := b.Row(a.ColIdx[p])
			for t, bv := range brow {
				crow[t] += v * bv
			}
		}
	}
}

// RefMulWtATo computes C = Wᵀ·A (C is w.Cols×a.Cols, W is a.Rows×k)
// by scattering each sparse row into the strided output columns; each
// output element receives its contributions in ascending row order.
func RefMulWtATo(c *mat.Dense, a *CSR, w *mat.Dense) {
	c.Zero()
	for i := 0; i < a.Rows; i++ {
		wrow := w.Row(i)
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			v := a.Val[q]
			for t, wv := range wrow {
				c.Data[t*a.Cols+j] += v * wv
			}
		}
	}
}
