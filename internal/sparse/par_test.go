package sparse

import (
	"sort"
	"testing"

	"hpcnmf/internal/mat"
	"hpcnmf/internal/par"
	"hpcnmf/internal/rng"
)

// refFromCoords is the comparison-sort construction the counting-sort
// FromCoords replaced; kept here as the differential reference.
func refFromCoords(rows, cols int, entries []Coord) *CSR {
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	a := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		a.ColIdx = append(a.ColIdx, sorted[i].Col)
		a.Val = append(a.Val, v)
		a.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for i := 0; i < rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a
}

// TestFromCoordsDuplicatesAndZeros pins the counting-sort semantics:
// duplicates are summed in input order (including duplicates that
// cancel to zero), explicit zeros are kept, and rows end up
// column-sorted from arbitrarily shuffled input.
func TestFromCoordsDuplicatesAndZeros(t *testing.T) {
	entries := []Coord{
		{Row: 2, Col: 3, Val: 5},
		{Row: 0, Col: 1, Val: 0}, // explicit zero, must be stored
		{Row: 2, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: -5}, // cancels the first entry to zero
		{Row: 1, Col: 2, Val: 2},
		{Row: 1, Col: 2, Val: 3}, // duplicate, sums to 5
		{Row: 0, Col: 4, Val: 7},
	}
	a := FromCoords(3, 5, entries)
	if a.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5 (duplicates collapsed, zeros kept)", a.NNZ())
	}
	if v := a.At(2, 3); v != 0 {
		t.Errorf("cancelled duplicate at (2,3) = %g, want stored 0", v)
	}
	if got := a.RowNNZ(2); got != 2 {
		t.Errorf("row 2 has %d stored entries, want 2 (incl. cancelled)", got)
	}
	if v := a.At(0, 1); v != 0 || a.RowNNZ(0) != 2 {
		t.Errorf("explicit zero at (0,1) not stored: val %g, row nnz %d", v, a.RowNNZ(0))
	}
	if v := a.At(1, 2); v != 5 {
		t.Errorf("duplicate sum at (1,2) = %g, want 5", v)
	}
	for i := 0; i < a.Rows; i++ {
		cols := a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]
		if !sort.IntsAreSorted(cols) {
			t.Errorf("row %d columns not sorted: %v", i, cols)
		}
	}
}

// TestFromCoordsMatchesSortReference cross-checks the counting sort
// against the comparison-sort construction on random shuffled
// coordinate sets with many duplicates.
func TestFromCoordsMatchesSortReference(t *testing.T) {
	s := rng.New(31)
	for trial := 0; trial < 25; trial++ {
		rows := int(s.Uint64()%20) + 1
		cols := int(s.Uint64()%20) + 1
		n := int(s.Uint64() % 200)
		entries := make([]Coord, n)
		for i := range entries {
			entries[i] = Coord{
				Row: int(s.Uint64() % uint64(rows)),
				Col: int(s.Uint64() % uint64(cols)),
				Val: 2*s.Float64() - 1,
			}
		}
		got := FromCoords(rows, cols, entries)
		want := refFromCoords(rows, cols, entries)
		if !got.Equal(want, 0) {
			t.Fatalf("trial %d (%dx%d, %d entries): counting sort differs from reference", trial, rows, cols, n)
		}
	}
	// Empty input.
	if e := FromCoords(4, 4, nil); e.NNZ() != 0 || len(e.RowPtr) != 5 {
		t.Errorf("empty FromCoords: nnz %d rowptr %v", e.NNZ(), e.RowPtr)
	}
}

// TestMulBtToPoolMatchesSerial checks the row-partitioned parallel
// A·B kernel is bitwise identical to the serial one, including into a
// dirty (recycled) output buffer.
func TestMulBtToPoolMatchesSerial(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	s := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		m := int(s.Uint64()%300) + 1
		n := int(s.Uint64()%200) + 1
		k := int(s.Uint64()%20) + 1
		a := RandomER(m, n, 0.08, s)
		b := randomDense(n, k, 1000+uint64(trial))
		want := mat.NewDense(m, k)
		a.MulBtTo(want, b, nil)
		got := mat.NewDense(m, k)
		got.Fill(999) // dirty buffer: the kernel must overwrite fully
		a.MulBtTo(got, b, pool)
		if d := want.MaxDiff(got); d != 0 {
			t.Fatalf("trial %d (%dx%d nnz=%d): pooled MulBtTo differs by %g", trial, m, n, a.NNZ(), d)
		}
	}
}

// TestMulWtAToPoolMatchesSerial checks the column-windowed parallel
// Wᵀ·A kernel against the serial one, bitwise.
func TestMulWtAToPoolMatchesSerial(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	s := rng.New(78)
	for trial := 0; trial < 10; trial++ {
		m := int(s.Uint64()%300) + 1
		n := int(s.Uint64()%260) + 1
		k := int(s.Uint64()%20) + 1
		a := RandomER(m, n, 0.08, s)
		w := randomDense(m, k, 2000+uint64(trial))
		want := mat.NewDense(k, n)
		a.MulWtATo(want, w, nil)
		got := mat.NewDense(k, n)
		got.Fill(999)
		a.MulWtATo(got, w, pool)
		if d := want.MaxDiff(got); d != 0 {
			t.Fatalf("trial %d (%dx%d nnz=%d): pooled MulWtATo differs by %g", trial, m, n, a.NNZ(), d)
		}
	}
	// Degenerate shapes.
	empty := FromCoords(3, 4, nil)
	c := mat.NewDense(2, 4)
	empty.MulWtATo(c, randomDense(3, 2, 5), nil)
	if c.MaxDiff(mat.NewDense(2, 4)) != 0 {
		t.Error("empty-matrix MulWtATo must zero the output")
	}
}
