package sparse

import (
	"fmt"
	"sort"

	"hpcnmf/internal/mat"
	"hpcnmf/internal/par"
)

// Locality-partitioned sparse-times-dense kernels (after PL-NMF,
// arXiv:1904.07935). Three techniques close the gap the scalar
// reference loops leave open:
//
//   - nnz-balanced parallel ranges: worker boundaries are read off the
//     CSR/CSC prefix sums, so every worker owns roughly equal stored
//     entries regardless of row-degree skew — a row-count split hands
//     one worker the heavy rows of a power-law matrix. Below an nnz
//     threshold the pool is bypassed entirely: fan-out/join overhead
//     exceeds the kernel's work there (the old 0.85× "parallel
//     slowdown" regime).
//
//   - k-strip blocking: when the randomly-accessed dense factor panel
//     exceeds the cache budget, the k dimension is processed in strips
//     so the working set stays resident; the sparse index is re-
//     streamed once per strip (sequential, prefetch-friendly).
//
//   - four-entry unrolling into the SIMD axpy primitives of
//     internal/mat, which carry the kernel-dispatch upgrade
//     (SSE2/AVX2/FMA) into the sparse path.
//
// The bitwise contract holds throughout: workers own disjoint output
// elements, each output element accumulates its contributions in the
// same order as the scalar reference (ascending column order for A·B,
// ascending row order for Wᵀ·A), and the left-associated Axpy4 chain
// equals four sequential adds bit for bit. Every result is bitwise
// identical to RefMulBtTo/RefMulWtATo for any pool size, strip width,
// and non-FMA ISA level.

const (
	// spSerialNNZ is the stored-entry count below which the pool paths
	// run serially — at k≈50 the crossover sits well below this, so
	// the margin keeps tiny tiles (grid corners, test fixtures) off
	// the pool entirely.
	spSerialNNZ = 1 << 13

	// spMinStripK keeps strips wide enough for the SIMD primitives to
	// stay efficient.
	spMinStripK = 16
)

// spPanelWords bounds the dense-factor panel (rows×k float64 words)
// streamed by one strip: 4M words = 32 MiB, last-level-cache scale.
// Calibration note: an L2-scale budget (64k–256k words) measured
// SLOWER than no stripping on every benchmark shape — each extra
// strip re-streams the sparse index and shortens the axpy vectors,
// and with the panel still resident in a large L3 there are no misses
// to save. Stripping only pays once the panel outgrows the LLC
// (webbase scale: n≈1M rows at k=50 is a 400 MB panel), so the
// budget sits there. A var, not a const, so tests can shrink it to
// force the strip path on small fixtures.
var spPanelWords = 1 << 22

// stripWidth returns the k-strip width for a dense panel of
// panelRows×k: full k when the panel fits the cache budget, else a
// strip sized to spPanelWords.
func stripWidth(panelRows, k int) int {
	if panelRows <= 0 || panelRows*k <= spPanelWords {
		return k
	}
	kc := spPanelWords / panelRows
	if kc < spMinStripK {
		kc = spMinStripK
	}
	return kc
}

// nnzBounds returns ForRanges boundaries over [0, len(ptr)-1) whose
// ranges carry roughly equal stored entries, read off a CSR/CSC
// prefix-sum array in O(parts·log n).
func nnzBounds(ptr []int, parts int) []int {
	n := len(ptr) - 1
	bounds := make([]int, 1, parts+1)
	total := ptr[n] - ptr[0]
	if parts < 2 || total == 0 {
		return append(bounds, n)
	}
	prev := 0
	for part := 1; part < parts; part++ {
		target := ptr[0] + int(int64(total)*int64(part)/int64(parts))
		r := prev + sort.SearchInts(ptr[prev:n], target)
		if r <= prev {
			continue
		}
		if r >= n {
			break
		}
		bounds = append(bounds, r)
		prev = r
	}
	return append(bounds, n)
}

// MulBtTo computes C = A·B into an existing a.Rows×b.Cols matrix. The
// To form lets iteration loops reuse a workspace buffer instead of
// allocating the result. Workers own disjoint nnz-balanced row ranges
// of C (serial below spSerialNNZ), so the result is bitwise identical
// to RefMulBtTo for any pool size.
func (a *CSR) MulBtTo(c, b *mat.Dense, p *par.Pool) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: MulBt dimension mismatch %dx%d · (%dx%d)ᵀ... B must be Cols×k", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: MulBtTo output is %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	if p == nil || a.NNZ() < spSerialNNZ {
		a.mulBtRows(c, b, 0, a.Rows)
		return
	}
	p.ForRanges(nnzBounds(a.RowPtr, p.Workers()), func(i0, i1 int) {
		a.mulBtRows(c, b, i0, i1)
	})
}

// mulBtRows computes rows [i0,i1) of C = A·B: per row, four stored
// entries at a time gather four rows of B through Axpy4. Each element
// of C belongs to exactly one k-strip and accumulates its entries in
// ascending column order within it, preserving the reference order.
func (a *CSR) mulBtRows(c, b *mat.Dense, i0, i1 int) {
	k := b.Cols
	if k == 0 {
		return
	}
	kc := stripWidth(b.Rows, k)
	for t0 := 0; t0 < k; t0 += kc {
		t1 := min(t0+kc, k)
		for i := i0; i < i1; i++ {
			crow := c.Row(i)[t0:t1]
			for t := range crow {
				crow[t] = 0
			}
			lo, hi := a.RowPtr[i], a.RowPtr[i+1]
			q := lo
			for ; q+4 <= hi; q += 4 {
				v := [4]float64{a.Val[q], a.Val[q+1], a.Val[q+2], a.Val[q+3]}
				mat.Axpy4(crow,
					b.Row(a.ColIdx[q])[t0:t1],
					b.Row(a.ColIdx[q+1])[t0:t1],
					b.Row(a.ColIdx[q+2])[t0:t1],
					b.Row(a.ColIdx[q+3])[t0:t1], &v)
			}
			for ; q < hi; q++ {
				mat.Axpy(crow, b.Row(a.ColIdx[q])[t0:t1], a.Val[q])
			}
		}
	}
}

// cscIndex is the cached column-major view of a CSR matrix: column
// j's entries, in ascending row order, live at [colPtr[j],
// colPtr[j+1]) of rowIdx and val.
type cscIndex struct {
	colPtr, rowIdx []int
	val            []float64
}

// csc builds (once) and returns the column-major index — a counting
// sort, O(nnz + rows + cols), amortized across every later Wᵀ·A call
// on this matrix. See the CSR type comment for the immutability
// contract this relies on.
func (a *CSR) csc() *cscIndex {
	a.cscOnce.Do(func() {
		idx := &cscIndex{
			colPtr: make([]int, a.Cols+1),
			rowIdx: make([]int, a.NNZ()),
			val:    make([]float64, a.NNZ()),
		}
		for _, c := range a.ColIdx {
			idx.colPtr[c+1]++
		}
		for j := 0; j < a.Cols; j++ {
			idx.colPtr[j+1] += idx.colPtr[j]
		}
		next := make([]int, a.Cols)
		copy(next, idx.colPtr[:a.Cols])
		for i := 0; i < a.Rows; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				c := a.ColIdx[p]
				q := next[c]
				idx.rowIdx[q] = i
				idx.val[q] = a.Val[p]
				next[c]++
			}
		}
		a.cscIdx = idx
	})
	return a.cscIdx
}

// MulWtATo computes C = Wᵀ·A into an existing w.Cols×a.Cols matrix.
// It allocates one a.Cols×w.Cols temporary per call; iteration loops
// should prefer MulWtAToWS, which draws it from a workspace arena.
func (a *CSR) MulWtATo(c, w *mat.Dense, p *par.Pool) {
	a.MulWtAToWS(c, w, p, nil)
}

// MulWtAToWS computes C = Wᵀ·A into an existing w.Cols×a.Cols matrix,
// with the transposed accumulator drawn from ws (pass nil to
// allocate).
//
// The kernel is transpose-free in the traversal sense: instead of the
// old per-worker column-window scan (every worker re-walking all rows
// with two binary searches each — the source of the measured parallel
// slowdown), it walks the cached column-major index and writes Cᵀ
// rows contiguously, then transposes the n×k accumulator into C once
// (O(n·k), a few percent of the 2·nnz·k multiply work). Entries
// within a column arrive in ascending row order — exactly the
// reference kernel's per-element order — and workers own disjoint
// nnz-balanced column ranges, so the result is bitwise identical to
// RefMulWtATo for any pool size.
func (a *CSR) MulWtAToWS(c, w *mat.Dense, p *par.Pool, ws *mat.Workspace) {
	if a.Rows != w.Rows {
		panic(fmt.Sprintf("sparse: MulWtA dimension mismatch W %dx%d, A %dx%d", w.Rows, w.Cols, a.Rows, a.Cols))
	}
	if c.Rows != w.Cols || c.Cols != a.Cols {
		panic(fmt.Sprintf("sparse: MulWtATo output is %dx%d, want %dx%d", c.Rows, c.Cols, w.Cols, a.Cols))
	}
	k := w.Cols
	if k == 0 || a.Cols == 0 {
		return
	}
	idx := a.csc()
	var ct *mat.Dense
	if ws != nil {
		ct = ws.Get(a.Cols, k)
	} else {
		ct = mat.NewDense(a.Cols, k)
	}
	if p == nil || a.NNZ() < spSerialNNZ {
		a.mulWtACols(ct, w, idx, 0, a.Cols)
	} else {
		p.ForRanges(nnzBounds(idx.colPtr, p.Workers()), func(j0, j1 int) {
			a.mulWtACols(ct, w, idx, j0, j1)
		})
	}
	ct.TTo(c)
	if ws != nil {
		ws.Put(ct)
	}
}

// mulWtACols computes rows [j0,j1) of Cᵀ = Aᵀ·W: per output column j
// of C, four stored entries at a time gather four rows of W through
// Axpy4. Rows of ct are zeroed here (including empty columns), so a
// dirty workspace buffer is safe.
func (a *CSR) mulWtACols(ct, w *mat.Dense, idx *cscIndex, j0, j1 int) {
	k := w.Cols
	kc := stripWidth(w.Rows, k)
	for t0 := 0; t0 < k; t0 += kc {
		t1 := min(t0+kc, k)
		for j := j0; j < j1; j++ {
			ctRow := ct.Row(j)[t0:t1]
			for t := range ctRow {
				ctRow[t] = 0
			}
			lo, hi := idx.colPtr[j], idx.colPtr[j+1]
			q := lo
			for ; q+4 <= hi; q += 4 {
				v := [4]float64{idx.val[q], idx.val[q+1], idx.val[q+2], idx.val[q+3]}
				mat.Axpy4(ctRow,
					w.Row(idx.rowIdx[q])[t0:t1],
					w.Row(idx.rowIdx[q+1])[t0:t1],
					w.Row(idx.rowIdx[q+2])[t0:t1],
					w.Row(idx.rowIdx[q+3])[t0:t1], &v)
			}
			for ; q < hi; q++ {
				mat.Axpy(ctRow, w.Row(idx.rowIdx[q])[t0:t1], idx.val[q])
			}
		}
	}
}
