package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hpcnmf/internal/metrics"
	"hpcnmf/internal/trace"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run writes to it from
// the server goroutine while the test polls it for the listen line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServeFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-solver", "bogus"},
		{"-max-delay", "-5ms"},
		{"stray-arg"},
		{"-not-a-flag"},
		{"-addr", "999.999.999.999:1"}, // unlistenable address
		// Cluster flags must be mutually consistent.
		{"-peers", "a:1,b:1"},                                     // -peers without -self
		{"-peers", "a:1,b:1", "-self", "a:1"},                     // -peers without -store
		{"-peers", "a:1,b:1", "-self", "c:1", "-store", "/tmp/x"}, // self not in peers
		{"-peers", "a:1,a:1", "-self", "a:1", "-store", "/tmp/x"}, // duplicate peer
		{"-peers", "a:1,b:1", "-self", "a:1", "-store", "/tmp/x", "-replicas", "0"},
		{"-self", "a:1"}, // -self without -peers
	}
	for _, args := range cases {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestServeClusterEndToEnd boots a two-shard cluster over one shared
// store directory via the real command seam, fits a model through
// shard A, and reads it back byte-consistently through shard B —
// proving the flags wire the store, topology, and router together.
func TestServeClusterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Reserve two ports so the peer list can name concrete addresses.
	addrs := make([]string, 2)
	lns := make([]net.Listener, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		lns[i] = ln
	}
	peers := strings.Join(addrs, ",")

	outs := make([]*syncBuffer, 2)
	done := make(chan error, 2)
	for i := range addrs {
		outs[i] = &syncBuffer{}
		lns[i].Close() // free the port for run's own listener
		go func(i int) {
			done <- run([]string{
				"-addr", addrs[i], "-self", addrs[i],
				"-peers", peers, "-replicas", "2",
				"-store", filepath.Join(dir, "models"),
				"-fit-workers", "1", "-max-delay", "0",
			}, outs[i], outs[i])
		}(i)
	}
	for i := range addrs {
		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(outs[i].String(), "listening on") {
			select {
			case err := <-done:
				t.Fatalf("shard %d exited early: %v\noutput: %s", i, err, outs[i].String())
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d never listened; output: %q", i, outs[i].String())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !strings.Contains(outs[i].String(), "cluster shard") {
			t.Fatalf("shard %d did not announce cluster mode: %q", i, outs[i].String())
		}
	}

	// Fit through shard 0; the accepted response names the shard that
	// ran it (job ids are shard-local).
	data := make([]float64, 6*5)
	for i := range data {
		data[i] = 0.3 + float64(i%5)/5
	}
	body, _ := json.Marshal(map[string]any{"model": "cm", "rows": 6, "cols": 5, "data": data, "k": 2, "max_iter": 20})
	resp, err := http.Post("http://"+addrs[0]+"/v1/fit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	shard := resp.Header.Get("X-Shard")
	var accepted struct {
		StatusURL string `json:"status_url"`
	}
	json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || shard == "" {
		t.Fatalf("fit: status %d, shard %q", resp.StatusCode, shard)
	}
	deadline := time.Now().Add(15 * time.Second)
	for state := ""; state != "done"; {
		if time.Now().After(deadline) {
			t.Fatalf("fit stuck in %q", state)
		}
		r, err := http.Get("http://" + shard + accepted.StatusURL)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var job struct{ State, Error string }
		json.NewDecoder(r.Body).Decode(&job)
		r.Body.Close()
		if job.State == "failed" {
			t.Fatalf("fit failed: %s", job.Error)
		}
		state = job.State
		time.Sleep(5 * time.Millisecond)
	}

	// Project through both shards: answers must be byte-identical.
	col := make([]float64, 6)
	for i := range col {
		col[i] = data[i*5]
	}
	body, _ = json.Marshal(map[string]any{"model": "cm", "column": col})
	var answers [][]byte
	for _, a := range addrs {
		r, err := http.Post("http://"+a+"/v1/project", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("project via %s: %v", a, err)
		}
		var pb bytes.Buffer
		pb.ReadFrom(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("project via %s: status %d, body %s", a, r.StatusCode, pb.String())
		}
		answers = append(answers, pb.Bytes())
	}
	if !bytes.Equal(answers[0], answers[1]) {
		t.Fatalf("shards disagree:\n%s\n%s", answers[0], answers[1])
	}

	// /healthz reports the topology from either shard.
	r, err := http.Get("http://" + addrs[1] + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var h struct {
		Status   string   `json:"status"`
		Peers    []string `json:"peers"`
		Replicas int      `json:"replicas"`
	}
	json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if h.Status != "ok" || len(h.Peers) != 2 || h.Replicas != 2 {
		t.Fatalf("healthz = %+v", h)
	}

	// The durable store holds the committed model on disk.
	entries, err := os.ReadDir(filepath.Join(dir, "models"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("store dir empty after commit: %v, %d entries", err, len(entries))
	}

	// Both shards drain cleanly on SIGINT.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shard exited with %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("shards did not shut down after SIGINT")
		}
	}
}

// TestServeEndToEnd boots the server on an ephemeral port, fits a
// model over HTTP, projects against it, checks /metrics moved, and
// shuts down via SIGINT — the full serve lifecycle.
func TestServeEndToEnd(t *testing.T) {
	var out syncBuffer
	var errb syncBuffer
	tracePath := filepath.Join(t.TempDir(), "serve.trace.json")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-fit-workers", "1",
			"-pprof", "-log", "info,serve=debug", "-trace", tracePath,
		}, &out, &errb)
	}()

	// Parse the advertised address from the listen line.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never printed its listen line; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "listening on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fit a tiny rank-2 model.
	data := make([]float64, 6*5)
	for i := range data {
		data[i] = 0.2 + float64(i%7)/7
	}
	fit := map[string]any{"model": "demo", "rows": 6, "cols": 5, "data": data, "k": 2, "max_iter": 30}
	body, _ := json.Marshal(fit)
	resp, err := http.Post(base+"/v1/fit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit: status %d", resp.StatusCode)
	}
	var accepted struct {
		StatusURL string `json:"status_url"`
	}
	json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()

	// Poll until the fit lands.
	state := ""
	for state != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("fit job stuck in state %q", state)
		}
		r, err := http.Get(base + accepted.StatusURL)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var job struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&job)
		r.Body.Close()
		if job.State == "failed" {
			t.Fatalf("fit failed: %s", job.Error)
		}
		state = job.State
		time.Sleep(5 * time.Millisecond)
	}

	// Project a column of the training data.
	col := make([]float64, 6)
	for i := range col {
		col[i] = data[i*5]
	}
	body, _ = json.Marshal(map[string]any{"model": "demo", "column": col})
	resp, err = http.Post(base+"/v1/project", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("project: %v", err)
	}
	var proj struct {
		H         [][]float64 `json:"h"`
		Residuals []float64   `json:"residuals"`
	}
	json.NewDecoder(resp.Body).Decode(&proj)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(proj.H) != 1 || len(proj.H[0]) != 2 {
		t.Fatalf("project: status %d, body %+v", resp.StatusCode, proj)
	}

	// Metrics counters must have moved; the default exposition is
	// Prometheus text, so names arrive sanitized with counter suffixes.
	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(r.Body)
	r.Body.Close()
	for _, want := range []string{"serve_project_requests_total", "serve_fit_completed_total"} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, mbuf.String())
		}
	}
	if err := metrics.LintPrometheus(strings.NewReader(mbuf.String())); err != nil {
		t.Errorf("/metrics failed Prometheus lint: %v", err)
	}

	// -pprof exposed the profiling index.
	r, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d, want 200", r.StatusCode)
	}

	// Graceful shutdown on SIGINT.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("signalling self: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\nstderr: %s", err, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after SIGINT")
	}
	if got := out.String(); !strings.Contains(got, "drained, shutting down") {
		t.Errorf("shutdown did not report draining:\n%s", got)
	}

	// -trace wrote a parseable Chrome trace with the request span chain.
	tr, err := trace.ParseChromeFile(tracePath)
	if err != nil {
		t.Fatalf("parsing trace export: %v", err)
	}
	found := false
	for _, ev := range tr.Events {
		if ev.Cat == trace.CatRequest && ev.Name == "http.project" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace export has no http.project request span (%d events)", len(tr.Events))
	}

	// -log "serve=debug" routed component-tagged debug lines to stderr.
	if got := errb.String(); !strings.Contains(got, "component=serve") {
		t.Errorf("stderr has no serve-component log lines:\n%s", got)
	}
}
