// Command nmfserve runs the batched-projection model server: fitted
// NMF models are held resident (basis + cached Gram) and new data
// columns are projected onto them over HTTP, with concurrent requests
// coalesced into stacked NNLS solves.
//
//	nmfserve -addr localhost:7600
//	curl -X POST :7600/v1/fit -d '{"model":"m","rows":4,"cols":3,"data":[...],"k":2}'
//	curl :7600/v1/jobs/fit-1
//	curl -X POST :7600/v1/project -d '{"model":"m","column":[...]}'
//	curl :7600/metrics
//
// Shutdown (SIGINT/SIGTERM) is graceful: the listener stops accepting,
// in-flight fits and queued projections drain, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"hpcnmf"
	"hpcnmf/internal/cluster"
	"hpcnmf/internal/obs"
	"hpcnmf/internal/serve"
	"hpcnmf/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "nmfserve: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, output goes to the writers, and failures are returned instead
// of exiting the process. It serves until SIGINT/SIGTERM.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nmfserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "localhost:7600", "listen address (use :0 for an ephemeral port)")
		maxBatch   = fs.Int("max-batch", 32, "max columns per stacked NNLS solve")
		maxDelay   = fs.Duration("max-delay", 2*time.Millisecond, "how long a batch lingers for stragglers (0 = flush immediately)")
		queueCap   = fs.Int("queue", 0, "pending projection columns per model before 429 (0 = 4x max-batch)")
		budgetMB   = fs.Int64("budget-mb", 256, "resident model budget in MiB; past it the LRU model is evicted (< 0 disables)")
		fitWorkers = fs.Int("fit-workers", 2, "async fit worker pool size")
		fitQueue   = fs.Int("fit-queue", 8, "pending fit jobs before 429 + Retry-After")
		solverName = fs.String("solver", "bpp", "projection NNLS solver: bpp, activeset, mu, hals, pgd")
		sweeps     = fs.Int("sweeps", 8, "inner sweeps for the inexact projection solvers (mu, hals, pgd)")
		tracePath  = fs.String("trace", "", "write a Chrome trace_event JSON of request/batch/solve/kernel spans on shutdown")
		drainSecs  = fs.Int("drain-timeout", 30, "seconds to wait for in-flight HTTP requests on shutdown")
		pprofOn    = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ for continuous profiling")
		logSpec    = fs.String("log", "info", "log level spec: a default level plus per-component overrides, e.g. 'info,serve=debug'")
		storeDir   = fs.String("store", "", "durable model store directory; fitted models are committed here and warm-started on boot")
		peerList   = fs.String("peers", "", "comma-separated static cluster peer list (host:port,...); enables sharded serving")
		selfAddr   = fs.String("self", "", "this instance's advertised address — must appear in -peers (cluster mode)")
		replicas   = fs.Int("replicas", 1, "replication factor: how many peers hold each model resident (cluster mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	var kind hpcnmf.SolverKind
	switch *solverName {
	case "bpp":
		kind = hpcnmf.SolverBPP
	case "activeset":
		kind = hpcnmf.SolverActiveSet
	case "mu":
		kind = hpcnmf.SolverMU
	case "hals":
		kind = hpcnmf.SolverHALS
	case "pgd":
		kind = hpcnmf.SolverPGD
	default:
		return fmt.Errorf("unknown solver %q", *solverName)
	}
	if *maxDelay < 0 {
		return fmt.Errorf("-max-delay must be >= 0")
	}
	budget := *budgetMB << 20
	if *budgetMB < 0 {
		budget = -1
	}
	// maxDelay 0 means "flush immediately"; serve.Options keeps 0 as
	// its default marker, so translate.
	delay := *maxDelay
	if delay == 0 {
		delay = -1
	}

	logger, err := obs.New(stderr, *logSpec)
	if err != nil {
		return err
	}

	// Cluster mode: validate the topology before anything listens, so a
	// misconfigured instance fails fast instead of serving wrong shards.
	var topo *cluster.Topology
	if *peerList != "" {
		if *selfAddr == "" {
			return fmt.Errorf("-peers requires -self (this instance's advertised address)")
		}
		if *storeDir == "" {
			return fmt.Errorf("-peers requires -store (the shared durable store is the cluster's source of truth)")
		}
		if *replicas < 1 {
			return fmt.Errorf("-replicas must be >= 1")
		}
		topo, err = cluster.NewTopology(strings.Split(*peerList, ","), *replicas)
		if err != nil {
			return err
		}
		if !topo.Contains(*selfAddr) {
			return fmt.Errorf("-self %q is not in -peers %q", *selfAddr, *peerList)
		}
	} else if *selfAddr != "" {
		return fmt.Errorf("-self is only meaningful with -peers")
	}

	var durable *store.FS
	if *storeDir != "" {
		durable, err = store.NewFS(*storeDir)
		if err != nil {
			return fmt.Errorf("opening model store: %w", err)
		}
	}

	opts := serve.Options{
		MaxBatch:      *maxBatch,
		MaxDelay:      delay,
		QueueCap:      *queueCap,
		StoreBudget:   budget,
		FitWorkers:    *fitWorkers,
		FitQueue:      *fitQueue,
		ProjectSolver: kind,
		ProjectSweeps: *sweeps,
		TraceEvents:   *tracePath != "",
		Pprof:         *pprofOn,
		Logger:        logger,
	}
	if durable != nil {
		opts.Durable = durable
	}
	// The router wraps the server, so it is built after serve.New; the
	// commit hooks reach it through an atomic pointer, which is stored
	// before the listener accepts the first request.
	var rtp atomic.Pointer[cluster.Router]
	if topo != nil {
		self := *selfAddr
		opts.WarmFilter = func(id string) bool { return topo.IsOwner(self, id) }
		opts.OnCommit = func(id string) {
			if r := rtp.Load(); r != nil {
				r.FanOutCommit(id)
			}
		}
		opts.OnDelete = func(id string) {
			if r := rtp.Load(); r != nil {
				r.FanOutDelete(id)
			}
		}
	}
	srv := serve.New(opts)

	var handler http.Handler = srv
	if topo != nil {
		rt, err := cluster.New(srv, cluster.Options{
			Self:     *selfAddr,
			Peers:    topo.Peers(),
			Replicas: topo.Replicas(),
			Logger:   logger,
		})
		if err != nil {
			srv.Close()
			return err
		}
		rtp.Store(rt)
		handler = rt
		fmt.Fprintf(stdout, "cluster shard %s of %d peers, replication %d\n", *selfAddr, len(topo.Peers()), topo.Replicas())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: handler}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "received %v: draining in-flight work\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "nmfserve: HTTP shutdown: %v\n", err)
	}
	srv.Close() // drains accepted fits, then queued projections
	if *tracePath != "" {
		if tr := srv.Trace(); tr != nil {
			if err := tr.WriteChromeFile(*tracePath); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
			fmt.Fprintf(stdout, "wrote trace %s (%d events)\n", *tracePath, len(tr.Events))
		}
	}
	fmt.Fprintln(stdout, "drained, shutting down")
	return nil
}
