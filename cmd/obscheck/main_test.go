package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpcnmf/internal/metrics"
	"hpcnmf/internal/trace"
)

// writeArtifacts produces one valid Prometheus exposition and one valid
// Chrome trace in dir, returning their paths.
func writeArtifacts(t *testing.T, dir string) (promPath, tracePath string) {
	t.Helper()

	reg := metrics.NewRegistry()
	reg.Counter("serve.project.requests").Add(3)
	reg.Gauge("mpi.rank.0.overlap.efficiency").Set(0.5)
	reg.Histogram("serve.batch.size").Observe(4)
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatalf("writing exposition: %v", err)
	}
	promPath = filepath.Join(dir, "metrics.txt")
	if err := os.WriteFile(promPath, prom.Bytes(), 0o644); err != nil {
		t.Fatalf("writing %s: %v", promPath, err)
	}

	sess := trace.NewSession(1, 16)
	tc := sess.Tracer(0)
	sp := tc.BeginChild(trace.SpanContext{TraceID: trace.NewTraceID()}, trace.CatRequest, "http.project")
	inner := tc.Begin(trace.CatKernel, "NNLS")
	time.Sleep(time.Millisecond)
	inner.End()
	sp.End()
	tracePath = filepath.Join(dir, "run.trace.json")
	if err := sess.Merge().WriteChromeFile(tracePath); err != nil {
		t.Fatalf("writing trace: %v", err)
	}
	return promPath, tracePath
}

func TestCheckValidArtifacts(t *testing.T) {
	promPath, tracePath := writeArtifacts(t, t.TempDir())
	var out, errb bytes.Buffer
	err := run([]string{"-prom", promPath, "-trace", tracePath, "-span", "http.project"},
		&out, &errb, strings.NewReader(""))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"prom ok:", "trace ok:", "2 events", "1 ranks"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCheckFromStdin(t *testing.T) {
	promPath, _ := writeArtifacts(t, t.TempDir())
	data, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-prom", "-"}, &out, &errb, bytes.NewReader(data)); err != nil {
		t.Fatalf("run with stdin: %v", err)
	}
	if !strings.Contains(out.String(), "prom ok: -") {
		t.Errorf("stdin lint not reported:\n%s", out.String())
	}
}

func TestCheckRejectsBadArtifacts(t *testing.T) {
	dir := t.TempDir()
	promPath, tracePath := writeArtifacts(t, dir)

	badProm := filepath.Join(dir, "bad.txt")
	os.WriteFile(badProm, []byte("# TYPE x counter\nx{oops 1\n"), 0o644)
	badTrace := filepath.Join(dir, "bad.json")
	os.WriteFile(badTrace, []byte("not json"), 0o644)

	cases := [][]string{
		{},                   // nothing to check
		{"-prom", badProm},   // lint failure
		{"-trace", badTrace}, // parse failure
		{"-trace", tracePath, "-span", "no.such.span"},
		{"-span", "x"}, // -span without -trace
		{"-prom", "-", "-trace", "-"},
		{"-prom", filepath.Join(dir, "missing.txt")},
		{"stray"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb, strings.NewReader("")); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	// Sanity: the good artifacts still pass, so the failures above are
	// about the inputs, not the harness.
	var out, errb bytes.Buffer
	if err := run([]string{"-prom", promPath}, &out, &errb, strings.NewReader("")); err != nil {
		t.Fatalf("control run failed: %v", err)
	}
}
