// Command obscheck validates observability artifacts so CI can assert
// them without external tooling: Prometheus text exposition (the
// promtool-style lint in internal/metrics) and Chrome trace_event JSON
// (the parser behind internal/trace exports).
//
//	obscheck -prom metrics.txt
//	curl -s :7600/metrics | obscheck -prom -
//	obscheck -trace run.trace.json -span http.project
//
// A path of "-" reads the artifact from stdin. Exit status is nonzero
// if any requested check fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hpcnmf/internal/metrics"
	"hpcnmf/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam; stdin backs the "-"
// pseudo-path.
func run(args []string, stdout, stderr io.Writer, stdin io.Reader) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		promPath  = fs.String("prom", "", "Prometheus text exposition file to lint (\"-\" for stdin)")
		tracePath = fs.String("trace", "", "Chrome trace_event JSON file to validate (\"-\" for stdin)")
		spanName  = fs.String("span", "", "with -trace: require at least one span with this name")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *promPath == "" && *tracePath == "" {
		return fmt.Errorf("nothing to check: pass -prom and/or -trace")
	}
	if *promPath == "-" && *tracePath == "-" {
		return fmt.Errorf("only one artifact may come from stdin")
	}
	if *spanName != "" && *tracePath == "" {
		return fmt.Errorf("-span requires -trace")
	}

	if *promPath != "" {
		if err := checkProm(*promPath, stdin); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "prom ok: %s\n", *promPath)
	}
	if *tracePath != "" {
		tr, err := parseTrace(*tracePath, stdin)
		if err != nil {
			return err
		}
		if *spanName != "" && !hasSpan(tr, *spanName) {
			return fmt.Errorf("%s: no span named %q among %d events", *tracePath, *spanName, len(tr.Events))
		}
		fmt.Fprintf(stdout, "trace ok: %s (%d events, %d ranks, %d dropped)\n",
			*tracePath, len(tr.Events), tr.Ranks, tr.Dropped)
	}
	return nil
}

// open resolves a path, mapping "-" to stdin. The returned closer is a
// no-op for stdin.
func open(path string, stdin io.Reader) (io.Reader, func() error, error) {
	if path == "-" {
		return stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func checkProm(path string, stdin io.Reader) error {
	r, done, err := open(path, stdin)
	if err != nil {
		return err
	}
	defer done()
	if err := metrics.LintPrometheus(r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func parseTrace(path string, stdin io.Reader) (*trace.Trace, error) {
	r, done, err := open(path, stdin)
	if err != nil {
		return nil, err
	}
	defer done()
	tr, err := trace.ParseChrome(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

func hasSpan(tr *trace.Trace, name string) bool {
	for _, ev := range tr.Events {
		if ev.Name == name {
			return true
		}
	}
	return false
}
