// Command nmfrun factorizes a dataset with any of the algorithms and
// prints convergence history and the per-iteration task breakdown.
// With the observability flags it also emits a Chrome trace_event
// timeline (-trace, open in Perfetto), a metrics snapshot (-metrics),
// and a machine-readable run report (-report).
//
// Usage:
//
//	nmfrun -data ssyn -k 16 -alg hpc2d -p 16 -iters 10   # -grid auto picks the grid
//	nmfrun -data ssyn -k 16 -alg hpc2d -grid 4x2         # explicit grid
//	nmfrun -data ssyn -k 16 -alg bpp -p 16               # HPC 2D skeleton + BPP updater
//	nmfrun -data ssyn -k 16 -alg auto -p 16              # joint algorithm x grid pick
//	nmfrun -data video -alg hpc1d -p 8
//	nmfrun -mm matrix.mtx -alg naive -p 4        # MatrixMarket input
//	nmfrun -data ssyn -alg hpc2d -p 16 -trace t.json -report r.json -metrics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"hpcnmf"
	"hpcnmf/internal/metrics"
	"hpcnmf/internal/ooc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "nmfrun: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, output goes to the writers, and failures are returned instead
// of exiting the process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nmfrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data     = fs.String("data", "dsyn", "dataset: dsyn, ssyn, video, webbase, bow (ignored with -mm)")
		mmPath   = fs.String("mm", "", "read a MatrixMarket file instead of generating a dataset")
		tiled    = fs.String("tiled", "", "factorize an out-of-core tile file (written by datagen -tiled) by streaming row panels from disk")
		tileMem  = fs.String("tile-mem", "", "tile-buffer byte budget for -tiled, e.g. 64MiB: prefetch depth is lowered to fit, and the run refuses to start if even depth 1 overflows")
		tileBack = fs.String("tile-backend", "auto", "tile reader backend for -tiled: auto, mmap, readerat")
		tileDep  = fs.Int("tile-depth", 0, "prefetch depth for -tiled: tiles loaded ahead of the updater (0 = default)")
		dense    = fs.Bool("dense", false, "force the dense kernel path: densify a sparse input instead of auto-detecting storage by density")
		scale    = fs.Float64("scale", 0.25, "dataset scale factor")
		alg      = fs.String("alg", "hpc2d", "algorithm: seq, naive, hpc1d, hpc2d, auto (joint algorithm x grid cost-model pick), or an update rule mu|hals|pgd|bpp (HPC 2D skeleton with that updater)")
		solver   = fs.String("solver", "bpp", "local NLS solver: bpp, activeset, mu, hals, pgd")
		sweeps   = fs.Int("sweeps", 1, "inner sweeps for mu/hals")
		k        = fs.Int("k", 10, "factorization rank")
		p        = fs.Int("p", 16, "processor count (parallel algorithms)")
		gridStr  = fs.String("grid", "auto", "hpc2d processor grid: auto (cost-model argmin over factorizations of -p) or explicit PRxPC, e.g. 4x2 (overrides -p)")
		noOvl    = fs.Bool("no-overlap", false, "disable comm/compute overlap in the HPC driver (blocking baseline)")
		iters    = fs.Int("iters", 10, "max alternating iterations")
		tol      = fs.Float64("tol", 0, "early-stop tolerance on relative-error decrease (0 = off)")
		seed     = fs.Uint64("seed", 42, "random seed")
		view     = fs.String("view", "both", "breakdown view: modeled, measured, both")
		out      = fs.String("out", "", "write factors to <out>.W and <out>.H (binary)")
		trace    = fs.String("trace", "", "write a Chrome trace_event JSON timeline (one track per rank)")
		report   = fs.String("report", "", "write a machine-readable JSON run report")
		metrics  = fs.Bool("metrics", false, "collect and print the metrics registry snapshot")
		progress = fs.Bool("progress", false, "stream per-iteration convergence telemetry to stdout as NDJSON")
		profile  = fs.String("profile", "", "profile the run: cpu, heap, mutex, or block (written as <kind>.pprof)")
		profDir  = fs.String("profile-dir", ".", "directory for -profile output")

		faultSpec = fs.String("fault", "", "fault-injection spec, e.g. 'kill:AllReduce:rank=2:call=3' (see internal/fault)")
		deadline  = fs.Duration("deadline", 0, "per-collective communication deadline (0 = default 2m)")
		ckptDir   = fs.String("ckpt", "", "checkpoint directory: periodically snapshot factors for -resume")
		ckptEvery = fs.Int("ckpt-every", 0, "checkpoint every N iterations (default 10 with -ckpt)")
		resume    = fs.String("resume", "", "resume from the checkpoint in this directory and keep checkpointing there")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	solverSet, algSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "solver":
			solverSet = true
		case "alg":
			algSet = true
		}
	})

	// -alg can name an update rule directly: the framework's headline
	// spelling, running the HPC 2D skeleton with that updater plugged
	// in. It is sugar for -alg hpc2d -solver <rule>. Out-of-core runs
	// use the streaming sequential driver instead of a skeleton, so
	// there the sugar sets only the updater.
	switch *alg {
	case "mu", "hals", "pgd", "bpp":
		if solverSet && *solver != *alg {
			return fmt.Errorf("-alg %s names an updater but -solver %s asks for a different one", *alg, *solver)
		}
		*solver = *alg
		if *tiled == "" {
			*alg = "hpc2d"
		} else {
			*alg = "seq"
		}
	}
	if *tiled != "" {
		if *mmPath != "" {
			return fmt.Errorf("-tiled and -mm both name an input; pick one")
		}
		if algSet && *alg != "seq" {
			return fmt.Errorf("-alg %s is in-core; -tiled runs the streaming sequential driver (use -alg seq or an updater name: mu, hals, pgd, bpp)", *alg)
		}
	}

	switch *view {
	case "modeled", "measured", "both":
	default:
		return fmt.Errorf("unknown -view %q (want modeled, measured, or both)", *view)
	}

	var a hpcnmf.Matrix
	var name string
	var tileFile *hpcnmf.TileFile
	tileDepth := *tileDep
	if *tiled != "" {
		f, err := hpcnmf.OpenTiledBackend(*tiled, *tileBack)
		if err != nil {
			return fmt.Errorf("opening tile file: %w", err)
		}
		defer f.Close()
		tileFile = f
		name = filepath.Base(*tiled)
		hdr := f.Header()
		if *tileMem != "" {
			budget, err := parseByteSize(*tileMem)
			if err != nil {
				return fmt.Errorf("bad -tile-mem: %w", err)
			}
			if tileDepth, err = fitTileDepth(hdr, tileDepth, budget); err != nil {
				return err
			}
		}
		depth := tileDepth
		if depth < 1 {
			depth = hpcnmf.DefaultTileDepth
		}
		tileBytes := hdr.TileRows * hdr.Cols * 8
		fmt.Fprintf(stdout, "storage: out-of-core (%d tiles of %d rows, %s each, %s backend, prefetch depth %d, %s resident tile buffers)\n",
			hdr.Tiles(), hdr.TileRows, formatBytes(tileBytes), f.BackendName(),
			depth, formatBytes(int64(depth+1)*tileBytes))
	} else if *mmPath != "" {
		f, err := os.Open(*mmPath)
		if err != nil {
			return err
		}
		csr, err := hpcnmf.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", *mmPath, err)
		}
		a = hpcnmf.WrapSparse(csr)
		name = *mmPath
	} else {
		ds := hpcnmf.GenerateDataset(*data, *scale, *seed)
		a = ds.Matrix
		name = ds.Name
	}

	// Storage selection. Sparse inputs take the sparse 2D HPC path by
	// default; MatrixMarket is a sparse container that often carries a
	// matrix dense in all but format, and above the density cutoff the
	// blocked dense kernels beat the CSR ones, so such inputs are
	// densified automatically. -dense forces densification either way.
	// The chosen path lands in the run report as dataset.storage.
	const denseCutoff = 0.25
	if s, ok := hpcnmf.UnwrapSparse(a); ok && *tiled == "" {
		m, n := a.Dims()
		density := 0.0
		if m > 0 && n > 0 {
			density = float64(a.NNZ()) / (float64(m) * float64(n))
		}
		switch {
		case *dense:
			a = hpcnmf.WrapDense(s.ToDense())
			fmt.Fprintf(stdout, "storage: dense (forced by -dense; density %.4f)\n", density)
		case density > denseCutoff:
			a = hpcnmf.WrapDense(s.ToDense())
			fmt.Fprintf(stdout, "storage: dense (auto: density %.4f > %.2f)\n", density, denseCutoff)
		default:
			fmt.Fprintf(stdout, "storage: sparse (density %.4f)\n", density)
		}
	} else if *dense && *tiled == "" {
		fmt.Fprintln(stdout, "storage: dense (-dense is a no-op on dense input)")
	}

	opts := hpcnmf.Options{
		K:             *k,
		MaxIter:       *iters,
		Tol:           *tol,
		Sweeps:        *sweeps,
		Seed:          *seed,
		ComputeError:  true,
		TraceEvents:   *trace != "",
		NoCommOverlap: *noOvl,
	}
	if *metrics || *report != "" {
		opts.Metrics = hpcnmf.NewMetricsRegistry()
	}
	if *progress {
		// One JSON object per completed iteration, flushed as the run
		// goes — tail -f friendly convergence telemetry.
		enc := json.NewEncoder(stdout)
		opts.Progress = func(p hpcnmf.Progress) { _ = enc.Encode(p) }
	} else if *report != "" {
		// Reports always embed the telemetry series; a non-nil hook is
		// what arms its collection.
		opts.Progress = func(hpcnmf.Progress) {}
	}
	opts.CommDeadline = *deadline
	if *faultSpec != "" {
		inj, err := hpcnmf.ParseFault(*faultSpec)
		if err != nil {
			return err
		}
		opts.Fault = inj
	}
	if *resume != "" && *ckptDir != "" && *resume != *ckptDir {
		return fmt.Errorf("-resume and -ckpt name different directories; -resume keeps checkpointing into its own directory")
	}
	opts.CheckpointDir = *ckptDir
	opts.CheckpointEvery = *ckptEvery
	// The solver must be applied before Resume: checkpoints record the
	// updater name and resuming validates it against the options.
	solverOpt, err := solverKind(*solver)
	if err != nil {
		return err
	}
	opts.Solver = solverOpt
	var resumedFrom int
	if *resume != "" {
		ck, err := hpcnmf.LoadCheckpoint(*resume)
		if err != nil {
			return fmt.Errorf("loading checkpoint: %w", err)
		}
		opts, err = ck.Resume(opts)
		if err != nil {
			return err
		}
		opts.CheckpointDir = *resume // keep snapshotting where we left off
		resumedFrom = ck.Meta.Iteration
		*k = opts.K
		fmt.Fprintf(stdout, "resuming %s from iteration %d (%d iterations remain)\n\n",
			*resume, resumedFrom, opts.MaxIter)
	}
	var res *hpcnmf.Result
	if *alg == "auto" {
		adv := hpcnmf.Advise(a, *k, *p)
		if len(adv) == 0 {
			return fmt.Errorf("cost model returned no algorithm advice for k=%d p=%d; pick -alg explicitly", *k, *p)
		}
		fmt.Fprintln(stdout, "cost-model forecast (fastest first):")
		for _, row := range adv {
			fmt.Fprintf(stdout, "  %-14s %.6f s/iter\n", row.Algorithm, row.Seconds)
		}
		if adv[0].Algorithm == "Naive" {
			*alg = "naive"
		} else if adv[0].Algorithm == "HPC-NMF-1D" {
			*alg = "hpc1d"
		} else {
			*alg = "hpc2d"
		}
		fmt.Fprintf(stdout, "selected: %s\n", *alg)
		// With the skeleton chosen, price algorithm x grid jointly and
		// pick the updater too — unless the user pinned one with
		// -solver, or the run resumes a checkpoint (whose updater is
		// fixed). The joint model covers the four update rules; the
		// skeleton rows above stay the naive/1d/2d tie-breaker.
		if !solverSet && *resume == "" {
			choices, jerr := hpcnmf.AdviseAlgorithmGrid(a, *k, *p)
			if jerr != nil {
				return fmt.Errorf("joint algorithm x grid advice: %w", jerr)
			}
			fmt.Fprintln(stdout, "joint algorithm x grid forecast (fastest first):")
			for _, ch := range choices {
				fmt.Fprintf(stdout, "  %-5s on %dx%d  %.6f s/iter x %.1f iters -> %.6f s\n",
					ch.Updater.Name, ch.Grid.PR, ch.Grid.PC, ch.IterSeconds, ch.Updater.IterFactor, ch.Seconds)
			}
			*solver = strings.ToLower(choices[0].Updater.Name)
			if opts.Solver, err = solverKind(*solver); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "selected updater: %s\n", *solver)
		}
		fmt.Fprintln(stdout)
	}
	stopProfile, err := startProfile(*profile, *profDir)
	if err != nil {
		return err
	}
	procs := *p
	if tileFile != nil {
		procs = 1
		res, err = hpcnmf.RunOutOfCore(tileFile, tileDepth, opts)
	} else {
		switch *alg {
		case "seq":
			procs = 1
			res, err = hpcnmf.Run(a, opts)
		case "naive":
			res, err = hpcnmf.RunNaive(a, *p, opts)
		case "hpc1d":
			res, err = hpcnmf.RunOnGrid(a, *p, 1, opts)
		case "hpc2d":
			if *gridStr == "auto" {
				res, err = hpcnmf.RunParallel(a, *p, opts)
			} else {
				var pr, pc int
				if pr, pc, err = parseGrid(*gridStr); err != nil {
					return err
				}
				procs = pr * pc
				res, err = hpcnmf.RunOnGrid(a, pr, pc, opts)
			}
		default:
			return fmt.Errorf("unknown algorithm %q", *alg)
		}
	}
	profErr := stopProfile(stdout)
	if err != nil {
		return err
	}
	if profErr != nil {
		return profErr
	}

	var m, n int
	if tileFile != nil {
		m, n = tileFile.Dims()
		fmt.Fprintf(stdout, "dataset:   %s (%dx%d, out-of-core)\n", name, m, n)
	} else {
		m, n = a.Dims()
		fmt.Fprintf(stdout, "dataset:   %s (%dx%d, nnz=%d)\n", name, m, n, a.NNZ())
	}
	fmt.Fprintf(stdout, "algorithm: %s, solver %s, k=%d\n", res.Algorithm, *solver, *k)
	if res.Grid.PR > 0 {
		how := "explicit"
		if res.GridAuto {
			how = "cost-model pick"
		}
		fmt.Fprintf(stdout, "grid:      %dx%d (%s), predicted %.6f s/iter, measured %.6f s/iter\n",
			res.Grid.PR, res.Grid.PC, how,
			res.GridPredictedSeconds, res.Breakdown.MeasuredTotal())
	}
	fmt.Fprintf(stdout, "iterations: %d\n\n", res.Iterations)
	fmt.Fprintln(stdout, "relative error per iteration:")
	for i, e := range res.RelErr {
		fmt.Fprintf(stdout, "  iter %3d: %.6f\n", i+1, e)
	}
	table, err := res.Breakdown.Format(*view)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nper-iteration task breakdown:\n%s", table)

	if res.OOC != nil {
		o := res.OOC
		fmt.Fprintf(stdout, "\ntile I/O: %d passes, %d tile loads (%s), load %.3f s, stream wait %.3f s, %.1f%% of I/O hidden behind compute\n",
			o.Passes, o.TilesLoaded, formatBytes(o.BytesLoaded),
			o.LoadSeconds, o.WaitSeconds, 100*o.HiddenFraction)
	}

	if *trace != "" {
		if err := res.Trace.WriteChromeFile(*trace); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(stdout, "\nwrote trace %s (%d events, %d rank tracks; open in Perfetto or chrome://tracing)\n",
			*trace, len(res.Trace.Events), res.Trace.Ranks)
	}
	if *metrics {
		printOverlap(stdout, opts.Metrics.Snapshot())
		fmt.Fprintf(stdout, "\nmetrics:\n")
		opts.Metrics.Snapshot().WriteText(stdout)
	}
	if *report != "" {
		var info hpcnmf.DatasetInfo
		if tileFile != nil {
			info = hpcnmf.DescribeTiled(name, tileFile)
		} else {
			info = hpcnmf.DescribeMatrix(name, a)
		}
		rep := hpcnmf.NewReport(info, procs, opts, res, *trace)
		if err := rep.WriteJSONFile(*report); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		fmt.Fprintf(stdout, "\nwrote report %s (schema v%d)\n", *report, rep.Version)
	}

	if *out != "" {
		if err := hpcnmf.SaveFactor(*out+".W", res.W); err != nil {
			return fmt.Errorf("saving W: %w", err)
		}
		if err := hpcnmf.SaveFactor(*out+".H", res.H); err != nil {
			return fmt.Errorf("saving H: %w", err)
		}
		fmt.Fprintf(stdout, "\nwrote %s.W (%dx%d) and %s.H (%dx%d)\n",
			*out, res.W.Rows, res.W.Cols, *out, res.H.Rows, res.H.Cols)
	}
	return nil
}

// startProfile arms one runtime/pprof profile kind bracketing the
// iteration loop. The returned stop function finalizes the profile,
// writes <kind>.pprof into dir, and notes the path on w. An empty kind
// is a no-op.
func startProfile(kind, dir string) (stop func(io.Writer) error, err error) {
	if kind == "" {
		return func(io.Writer) error { return nil }, nil
	}
	path := filepath.Join(dir, kind+".pprof")
	// finish snapshots a lookup-style profile into path at stop time.
	finish := func(w io.Writer, write func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s profile %s (inspect with: go tool pprof %s)\n", kind, path, path)
		return nil
	}
	switch kind {
	case "cpu":
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func(w io.Writer) error {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "\nwrote %s profile %s (inspect with: go tool pprof %s)\n", kind, path, path)
			return nil
		}, nil
	case "heap":
		return func(w io.Writer) error {
			runtime.GC() // settle live-heap accounting before the snapshot
			return finish(w, func(f *os.File) error { return pprof.WriteHeapProfile(f) })
		}, nil
	case "mutex":
		runtime.SetMutexProfileFraction(5)
		return func(w io.Writer) error {
			defer runtime.SetMutexProfileFraction(0)
			return finish(w, func(f *os.File) error { return pprof.Lookup("mutex").WriteTo(f, 0) })
		}, nil
	case "block":
		runtime.SetBlockProfileRate(10_000) // sample blocking events ≥ 10µs
		return func(w io.Writer) error {
			defer runtime.SetBlockProfileRate(0)
			return finish(w, func(f *os.File) error { return pprof.Lookup("block").WriteTo(f, 0) })
		}, nil
	}
	return nil, fmt.Errorf("unknown -profile %q (want cpu, heap, mutex, or block)", kind)
}

// printOverlap renders the per-rank comm/compute overlap table from
// the metrics snapshot: how long each rank's nonblocking collectives
// had to progress behind compute (window), how long the rank then
// blocked in Wait, and the hidden fraction window/(window+wait).
// Silent when the run recorded no nonblocking collectives.
func printOverlap(w io.Writer, snap *metrics.Snapshot) {
	if snap == nil || snap.Counters["mpi.overlap.requests"] == 0 {
		return
	}
	ranks := make([]int, 0, 16)
	for name := range snap.Counters {
		var r int
		if _, err := fmt.Sscanf(name, "mpi.rank.%d.overlap.window.ns", &r); err == nil {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	if len(ranks) == 0 {
		return
	}
	fmt.Fprintf(w, "\ncomm/compute overlap per rank (%d nonblocking collectives):\n", snap.Counters["mpi.overlap.requests"])
	fmt.Fprintf(w, "  %4s  %12s  %12s  %10s\n", "rank", "window (s)", "wait (s)", "hidden")
	for _, r := range ranks {
		window := float64(snap.Counters[fmt.Sprintf("mpi.rank.%d.overlap.window.ns", r)]) / 1e9
		wait := float64(snap.Counters[fmt.Sprintf("mpi.rank.%d.overlap.wait.ns", r)]) / 1e9
		fmt.Fprintf(w, "  %4d  %12.6f  %12.6f  %9.1f%%\n",
			r, window, wait,
			100*snap.Gauges[fmt.Sprintf("mpi.rank.%d.overlap.efficiency", r)])
	}
}

// solverKind maps a -solver flag value (or a lowercased updater name
// from the joint cost model) to its SolverKind.
func solverKind(name string) (hpcnmf.SolverKind, error) {
	switch name {
	case "bpp":
		return hpcnmf.SolverBPP, nil
	case "activeset":
		return hpcnmf.SolverActiveSet, nil
	case "mu":
		return hpcnmf.SolverMU, nil
	case "hals":
		return hpcnmf.SolverHALS, nil
	case "pgd":
		return hpcnmf.SolverPGD, nil
	}
	return 0, fmt.Errorf("unknown solver %q", name)
}

// fitTileDepth validates an out-of-core run against a byte budget:
// the pipeline holds depth+1 resident tile buffers (depth prefetched
// plus the one being consumed), so depth is lowered until they fit.
// If even depth 1 overflows, the tile file's panels are too tall for
// the budget and the run refuses to start rather than thrash.
func fitTileDepth(hdr ooc.Header, depth int, budget int64) (int, error) {
	if depth < 1 {
		depth = ooc.DefaultDepth
	}
	tileBytes := hdr.TileRows * hdr.Cols * 8
	for depth > 1 && int64(depth+1)*tileBytes > budget {
		depth--
	}
	if int64(depth+1)*tileBytes > budget {
		maxRows, err := ooc.TileRowsForBudget(int(hdr.Cols), 1, budget)
		if err != nil {
			return 0, fmt.Errorf("-tile-mem %s cannot hold two %d-row tiles (%s each); even single-row tiles overflow it",
				formatBytes(budget), hdr.TileRows, formatBytes(tileBytes))
		}
		return 0, fmt.Errorf("-tile-mem %s cannot hold two %d-row tiles (%s each); regenerate with datagen -tiled -tile-rows %d or less",
			formatBytes(budget), hdr.TileRows, formatBytes(tileBytes), maxRows)
	}
	return depth, nil
}

// parseByteSize parses a human byte size like "512KiB", "64MiB",
// "2GiB", "1048576", or "64MB" (decimal suffixes are accepted as
// their binary value: people asking for -tile-mem 64MB mean a memory
// budget, not a disk-marketing unit).
func parseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			mult = u.mult
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			break
		}
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("want a positive size like 64MiB, got %q", s)
	}
	if v > (int64(1)<<62)/mult {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return v * mult, nil
}

// formatBytes renders a byte count with its natural binary unit.
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// parseGrid parses an explicit "PRxPC" grid spec like "4x2".
func parseGrid(s string) (pr, pc int, err error) {
	prs, pcs, ok := strings.Cut(s, "x")
	if ok {
		pr, _ = strconv.Atoi(prs)
		pc, _ = strconv.Atoi(pcs)
	}
	if !ok || pr < 1 || pc < 1 {
		return 0, 0, fmt.Errorf("bad -grid %q (want auto or PRxPC, e.g. 4x2)", s)
	}
	return pr, pc, nil
}
