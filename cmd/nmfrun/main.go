// Command nmfrun factorizes a dataset with any of the algorithms and
// prints convergence history and the per-iteration task breakdown.
//
// Usage:
//
//	nmfrun -data ssyn -k 16 -alg hpc2d -p 16 -iters 10
//	nmfrun -data video -alg hpc1d -p 8
//	nmfrun -mm matrix.mtx -alg naive -p 4        # MatrixMarket input
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcnmf"
)

func main() {
	var (
		data   = flag.String("data", "dsyn", "dataset: dsyn, ssyn, video, webbase, bow (ignored with -mm)")
		mmPath = flag.String("mm", "", "read a MatrixMarket file instead of generating a dataset")
		scale  = flag.Float64("scale", 0.25, "dataset scale factor")
		alg    = flag.String("alg", "hpc2d", "algorithm: seq, naive, hpc1d, hpc2d, auto (cost-model pick)")
		solver = flag.String("solver", "bpp", "local NLS solver: bpp, activeset, mu, hals, pgd")
		sweeps = flag.Int("sweeps", 1, "inner sweeps for mu/hals")
		k      = flag.Int("k", 10, "factorization rank")
		p      = flag.Int("p", 16, "processor count (parallel algorithms)")
		iters  = flag.Int("iters", 10, "max alternating iterations")
		tol    = flag.Float64("tol", 0, "early-stop tolerance on relative-error decrease (0 = off)")
		seed   = flag.Uint64("seed", 42, "random seed")
		view   = flag.String("view", "both", "breakdown view: modeled, measured, both")
		out    = flag.String("out", "", "write factors to <out>.W and <out>.H (binary)")
	)
	flag.Parse()

	var a hpcnmf.Matrix
	var name string
	if *mmPath != "" {
		f, err := os.Open(*mmPath)
		if err != nil {
			fatal("%v", err)
		}
		csr, err := hpcnmf.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			fatal("parsing %s: %v", *mmPath, err)
		}
		a = hpcnmf.WrapSparse(csr)
		name = *mmPath
	} else {
		ds := hpcnmf.GenerateDataset(*data, *scale, *seed)
		a = ds.Matrix
		name = ds.Name
	}

	opts := hpcnmf.Options{
		K:            *k,
		MaxIter:      *iters,
		Tol:          *tol,
		Sweeps:       *sweeps,
		Seed:         *seed,
		ComputeError: true,
	}
	switch *solver {
	case "bpp":
		opts.Solver = hpcnmf.SolverBPP
	case "activeset":
		opts.Solver = hpcnmf.SolverActiveSet
	case "mu":
		opts.Solver = hpcnmf.SolverMU
	case "hals":
		opts.Solver = hpcnmf.SolverHALS
	case "pgd":
		opts.Solver = hpcnmf.SolverPGD
	default:
		fatal("unknown solver %q", *solver)
	}

	var res *hpcnmf.Result
	var err error
	if *alg == "auto" {
		adv := hpcnmf.Advise(a, *k, *p)
		fmt.Println("cost-model forecast (fastest first):")
		for _, row := range adv {
			fmt.Printf("  %-14s %.6f s/iter\n", row.Algorithm, row.Seconds)
		}
		if adv[0].Algorithm == "Naive" {
			*alg = "naive"
		} else if adv[0].Algorithm == "HPC-NMF-1D" {
			*alg = "hpc1d"
		} else {
			*alg = "hpc2d"
		}
		fmt.Printf("selected: %s\n\n", *alg)
	}
	switch *alg {
	case "seq":
		res, err = hpcnmf.Run(a, opts)
	case "naive":
		res, err = hpcnmf.RunNaive(a, *p, opts)
	case "hpc1d":
		res, err = hpcnmf.RunOnGrid(a, *p, 1, opts)
	case "hpc2d":
		res, err = hpcnmf.RunParallel(a, *p, opts)
	default:
		fatal("unknown algorithm %q", *alg)
	}
	if err != nil {
		fatal("%v", err)
	}

	m, n := a.Dims()
	fmt.Printf("dataset:   %s (%dx%d, nnz=%d)\n", name, m, n, a.NNZ())
	fmt.Printf("algorithm: %s, solver %s, k=%d\n", res.Algorithm, *solver, *k)
	fmt.Printf("iterations: %d\n\n", res.Iterations)
	fmt.Println("relative error per iteration:")
	for i, e := range res.RelErr {
		fmt.Printf("  iter %3d: %.6f\n", i+1, e)
	}
	fmt.Printf("\nper-iteration task breakdown:\n%s", res.Breakdown.Format(*view))

	if *out != "" {
		if err := hpcnmf.SaveFactor(*out+".W", res.W); err != nil {
			fatal("saving W: %v", err)
		}
		if err := hpcnmf.SaveFactor(*out+".H", res.H); err != nil {
			fatal("saving H: %v", err)
		}
		fmt.Printf("\nwrote %s.W (%dx%d) and %s.H (%dx%d)\n",
			*out, res.W.Rows, res.W.Cols, *out, res.H.Rows, res.H.Cols)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nmfrun: "+format+"\n", args...)
	os.Exit(1)
}
