package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOK executes run with the given args, failing the test on error.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errb.String())
	}
	return out.String()
}

// fast returns the base arguments for a quick smoke run.
func fast(extra ...string) []string {
	return append([]string{"-data", "dsyn", "-scale", "0.05", "-alg", "seq", "-k", "3", "-iters", "2"}, extra...)
}

func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-view", "bogus"},
		{"-solver", "bogus"},
		fast("-alg", "bogus"),
		fast("stray-arg"),
		{"-resume", "/tmp/a", "-ckpt", "/tmp/b"},
		{"-mm", "/nonexistent/matrix.mtx"},
		{"-resume", "/nonexistent/ckpt-dir"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunSeqSmoke(t *testing.T) {
	got := runOK(t, fast()...)
	for _, want := range []string{"dataset:", "algorithm:", "relative error per iteration", "iter   1", "per-iteration task breakdown"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunReportAndMetrics(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	got := runOK(t, fast("-report", report, "-metrics")...)
	if !strings.Contains(got, "metrics:") {
		t.Errorf("output missing metrics snapshot:\n%s", got)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep["version"] == nil {
		t.Errorf("report has no schema version: %v", rep)
	}
	// -report alone (no -progress) must still embed the telemetry
	// series — schema v2's whole point.
	if recs, ok := rep["progress"].([]any); !ok || len(recs) == 0 {
		t.Errorf("report has no progress series: %v", rep["progress"])
	}
}

func TestRunResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	runOK(t, fast("-ckpt", dir, "-ckpt-every", "1")...)
	if matches, _ := filepath.Glob(filepath.Join(dir, "*")); len(matches) == 0 {
		t.Fatal("checkpoint directory is empty after a checkpointed run")
	}
	got := runOK(t, fast("-resume", dir, "-iters", "4")...)
	if !strings.Contains(got, "resuming "+dir) {
		t.Errorf("resumed run did not report resuming:\n%s", got)
	}
}

func TestRunGridAutoPrintsPick(t *testing.T) {
	got := runOK(t, fast("-alg", "hpc2d", "-p", "4", "-grid", "auto")...)
	if !strings.Contains(got, "cost-model pick") || !strings.Contains(got, "grid:") {
		t.Errorf("auto grid run did not report the pick:\n%s", got)
	}
	if !strings.Contains(got, "predicted") || !strings.Contains(got, "measured") {
		t.Errorf("grid line missing predicted/measured forecast:\n%s", got)
	}
}

func TestRunGridExplicitOverridesP(t *testing.T) {
	got := runOK(t, fast("-alg", "hpc2d", "-p", "16", "-grid", "2x2")...)
	if !strings.Contains(got, "grid:      2x2 (explicit)") {
		t.Errorf("explicit -grid 2x2 not honored:\n%s", got)
	}
}

func TestRunGridFlagRejectsMalformed(t *testing.T) {
	var out, errb bytes.Buffer
	for _, bad := range []string{"4", "0x2", "2x0", "x", "2x", "axb", "-1x2", "2x2x2"} {
		args := fast("-alg", "hpc2d", "-grid", bad)
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run with -grid %q succeeded, want parse error", bad)
		} else if !strings.Contains(err.Error(), "grid") {
			t.Errorf("-grid %q error %q does not mention the flag", bad, err)
		}
	}
}

func TestRunNoOverlapMatchesDefault(t *testing.T) {
	ovl := runOK(t, fast("-alg", "hpc2d", "-p", "4")...)
	blk := runOK(t, fast("-alg", "hpc2d", "-p", "4", "-no-overlap")...)
	// Timings differ run to run, but every numeric iterate must not:
	// the overlapped schedule is bitwise identical to the blocking one.
	iterLines := func(s string) []string {
		var keep []string
		for _, ln := range strings.Split(s, "\n") {
			if strings.Contains(ln, "iter ") {
				keep = append(keep, ln)
			}
		}
		return keep
	}
	a, b := iterLines(ovl), iterLines(blk)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("iterate lines differ in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("-no-overlap changed iterate %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// -progress streams one JSON object per iteration, each parseable and
// in iteration order, interleaved with the human report on stdout.
func TestRunProgressNDJSON(t *testing.T) {
	got := runOK(t, fast("-progress")...)
	var iters []int
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var rec struct {
			Iter    int     `json:"iter"`
			RelErr  float64 `json:"rel_err"`
			Elapsed float64 `json:"elapsed_seconds"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if rec.Elapsed <= 0 {
			t.Fatalf("progress line %q has no elapsed time", line)
		}
		iters = append(iters, rec.Iter)
	}
	if len(iters) != 2 {
		t.Fatalf("streamed %d progress lines, want 2: output\n%s", len(iters), got)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("progress iterations out of order: %v", iters)
		}
	}
}

// Each -profile kind writes a non-empty pprof file into -profile-dir.
func TestRunProfileKinds(t *testing.T) {
	for _, kind := range []string{"cpu", "heap", "mutex", "block"} {
		dir := t.TempDir()
		got := runOK(t, fast("-profile", kind, "-profile-dir", dir)...)
		path := filepath.Join(dir, kind+".pprof")
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s profile not written: %v", kind, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s profile is empty", kind)
		}
		if !strings.Contains(got, "wrote "+kind+" profile") {
			t.Errorf("output does not mention the %s profile:\n%s", kind, got)
		}
	}
	var out, errb bytes.Buffer
	if err := run(fast("-profile", "bogus"), &out, &errb); err == nil {
		t.Error("unknown -profile kind accepted")
	}
}

// A parallel run with -metrics surfaces the per-rank comm/compute
// overlap table (satellite of the observability issue).
func TestRunMetricsShowsOverlapTable(t *testing.T) {
	got := runOK(t, "-data", "dsyn", "-scale", "0.05", "-alg", "hpc2d", "-grid", "2x2", "-k", "3", "-iters", "2", "-metrics")
	for _, want := range []string{"comm/compute overlap per rank", "window (s)", "hidden"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// One row per rank of the 2x2 grid.
	for _, rank := range []string{"\n     0  ", "\n     3  "} {
		if !strings.Contains(got, rank) {
			t.Errorf("overlap table missing rank row %q:\n%s", rank, got)
		}
	}
}
