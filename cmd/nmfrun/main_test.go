package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOK executes run with the given args, failing the test on error.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errb.String())
	}
	return out.String()
}

// fast returns the base arguments for a quick smoke run.
func fast(extra ...string) []string {
	return append([]string{"-data", "dsyn", "-scale", "0.05", "-alg", "seq", "-k", "3", "-iters", "2"}, extra...)
}

func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-view", "bogus"},
		{"-solver", "bogus"},
		fast("-alg", "bogus"),
		fast("stray-arg"),
		{"-resume", "/tmp/a", "-ckpt", "/tmp/b"},
		{"-mm", "/nonexistent/matrix.mtx"},
		{"-resume", "/nonexistent/ckpt-dir"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunSeqSmoke(t *testing.T) {
	got := runOK(t, fast()...)
	for _, want := range []string{"dataset:", "algorithm:", "relative error per iteration", "iter   1", "per-iteration task breakdown"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunReportAndMetrics(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	got := runOK(t, fast("-report", report, "-metrics")...)
	if !strings.Contains(got, "metrics:") {
		t.Errorf("output missing metrics snapshot:\n%s", got)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep["version"] == nil {
		t.Errorf("report has no schema version: %v", rep)
	}
}

func TestRunResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	runOK(t, fast("-ckpt", dir, "-ckpt-every", "1")...)
	if matches, _ := filepath.Glob(filepath.Join(dir, "*")); len(matches) == 0 {
		t.Fatal("checkpoint directory is empty after a checkpointed run")
	}
	got := runOK(t, fast("-resume", dir, "-iters", "4")...)
	if !strings.Contains(got, "resuming "+dir) {
		t.Errorf("resumed run did not report resuming:\n%s", got)
	}
}
