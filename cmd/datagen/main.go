// Command datagen emits the evaluation datasets to files so they can
// be inspected or fed to other tools: sparse matrices in MatrixMarket
// coordinate format, dense matrices in a dense MatrixMarket-like
// array format. With -tiled it instead writes the out-of-core tile
// format read by nmfrun -tiled, streaming DSYN row by row so the
// output can be far larger than memory.
//
// Usage:
//
//	datagen -data ssyn -scale 0.5 -o ssyn.mtx
//	datagen -data video -o video.mtx
//	datagen -data dsyn -tiled -rows 200000 -cols 4096 -o big.nmft
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hpcnmf/internal/core"
	"hpcnmf/internal/datasets"
	"hpcnmf/internal/ooc"
)

func main() {
	var (
		data     = flag.String("data", "ssyn", "dataset: dsyn, ssyn, video, webbase, bow")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor")
		seed     = flag.Uint64("seed", 42, "random seed")
		out      = flag.String("o", "", "output path (default <data>.mtx, or <data>.nmft with -tiled)")
		tiled    = flag.Bool("tiled", false, "write the out-of-core tile format instead of MatrixMarket (dense datasets only)")
		tileRows = flag.Int("tile-rows", 0, "rows per tile in the -tiled file (0 = size tiles to ~8 MiB)")
		rows     = flag.Int("rows", 0, "override row count for -tiled dsyn (streams row by row; 0 = scaled default)")
		cols     = flag.Int("cols", 0, "override column count for -tiled dsyn (0 = scaled default)")
	)
	flag.Parse()

	path := *out
	if path == "" {
		if *tiled {
			path = *data + ".nmft"
		} else {
			path = *data + ".mtx"
		}
	}
	if *tiled {
		writeTiled(path, *data, *scale, *seed, *tileRows, *rows, *cols)
		return
	}
	if *rows != 0 || *cols != 0 {
		fatal("-rows/-cols only apply to -tiled output")
	}
	ds, err := datasets.ByName(*data, datasets.Scale(*scale), *seed)
	if err != nil {
		fatal("%v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()

	m, n := ds.Matrix.Dims()
	if csr, ok := core.UnwrapSparse(ds.Matrix); ok {
		if err := csr.WriteMatrixMarket(f); err != nil {
			fatal("writing %s: %v", path, err)
		}
	} else if d, ok := core.UnwrapDense(ds.Matrix); ok {
		if err := d.WriteMatrixMarket(f); err != nil {
			fatal("writing %s: %v", path, err)
		}
	} else {
		fatal("dataset %s has unknown storage", ds.Name)
	}
	fmt.Printf("wrote %s: %s %dx%d (nnz %d)\n", path, ds.Name, m, n, ds.Matrix.NNZ())
}

// writeTiled emits a dataset in the out-of-core tile format. DSYN is
// streamed one row at a time — memory stays constant no matter how
// large -rows/-cols make the output, and the values are bitwise
// identical to the in-core generator. Other dense datasets are
// generated in memory first; sparse ones have no tiled form.
func writeTiled(path, data string, scale float64, seed uint64, tileRows, rows, cols int) {
	switch strings.ToLower(data) {
	case "dsyn":
		m, n := rows, cols
		if m <= 0 {
			m = datasets.Scale(scale).Dim(1728)
		}
		if n <= 0 {
			n = datasets.Scale(scale).Dim(1152)
		}
		if tileRows <= 0 {
			tileRows = ooc.DefaultTileRows(n)
		}
		w, err := ooc.Create(path, m, n, tileRows)
		if err != nil {
			fatal("%v", err)
		}
		if err := datasets.StreamDSYN(m, n, seed, w.WriteRow); err != nil {
			w.Close()
			fatal("writing %s: %v", path, err)
		}
		if err := w.Close(); err != nil {
			fatal("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s: DSYN %dx%d (%d tiles of %d rows, streamed)\n",
			path, m, n, w.Header().Tiles(), tileRows)
	case "video":
		if rows != 0 || cols != 0 {
			fatal("-rows/-cols only apply to dsyn")
		}
		ds, err := datasets.ByName(data, datasets.Scale(scale), seed)
		if err != nil {
			fatal("%v", err)
		}
		d, _ := core.UnwrapDense(ds.Matrix)
		if tileRows <= 0 {
			tileRows = ooc.DefaultTileRows(d.Cols)
		}
		if err := ooc.WriteMatrix(path, d, tileRows); err != nil {
			fatal("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s: %s %dx%d (tiles of %d rows)\n", path, ds.Name, d.Rows, d.Cols, tileRows)
	default:
		fatal("-tiled supports dense datasets only (dsyn, video); %q is sparse or unknown", data)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
