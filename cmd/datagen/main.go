// Command datagen emits the evaluation datasets to files so they can
// be inspected or fed to other tools: sparse matrices in MatrixMarket
// coordinate format, dense matrices in a dense MatrixMarket-like
// array format.
//
// Usage:
//
//	datagen -data ssyn -scale 0.5 -o ssyn.mtx
//	datagen -data video -o video.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcnmf/internal/core"
	"hpcnmf/internal/datasets"
)

func main() {
	var (
		data  = flag.String("data", "ssyn", "dataset: dsyn, ssyn, video, webbase, bow")
		scale = flag.Float64("scale", 0.25, "dataset scale factor")
		seed  = flag.Uint64("seed", 42, "random seed")
		out   = flag.String("o", "", "output path (default <data>.mtx)")
	)
	flag.Parse()

	path := *out
	if path == "" {
		path = *data + ".mtx"
	}
	ds, err := datasets.ByName(*data, datasets.Scale(*scale), *seed)
	if err != nil {
		fatal("%v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()

	m, n := ds.Matrix.Dims()
	if csr, ok := core.UnwrapSparse(ds.Matrix); ok {
		if err := csr.WriteMatrixMarket(f); err != nil {
			fatal("writing %s: %v", path, err)
		}
	} else if d, ok := core.UnwrapDense(ds.Matrix); ok {
		if err := d.WriteMatrixMarket(f); err != nil {
			fatal("writing %s: %v", path, err)
		}
	} else {
		fatal("dataset %s has unknown storage", ds.Name)
	}
	fmt.Printf("wrote %s: %s %dx%d (nnz %d)\n", path, ds.Name, m, n, ds.Matrix.NNZ())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
