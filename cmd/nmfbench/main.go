// Command nmfbench regenerates the paper's evaluation artifacts
// (Figures 3a–3h, Tables 2 and 3, and the §6.2 Hadoop comparison) on
// the simulated cluster. See DESIGN.md for the experiment index.
//
// Usage:
//
//	nmfbench -exp fig3a            # one experiment
//	nmfbench -exp fig3a,fig3b     # several
//	nmfbench -exp all             # everything (minutes at full scale)
//	nmfbench -exp all -scale 0.25 # quick pass
//
// Output columns are per-iteration seconds per task in the α-β-γ
// modeled view by default (-view measured|modeled|both).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hpcnmf/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "nmfbench: %v\n", err)
		os.Exit(1)
	}
}

// errRegression marks a kernel-regression gate failure (exit 1 with
// the offending rows already printed to stderr).
var errRegression = fmt.Errorf("kernel regression gate failed")

// run is the whole command behind a testable seam: flags come from
// args, output goes to the writers, and failures are returned instead
// of exiting the process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nmfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment id(s), comma-separated, or 'all': "+strings.Join(experiments.Names(), ", "))
		scale   = fs.Float64("scale", 1.0, "dataset scale factor (1.0 = paper-shaped defaults)")
		iters   = fs.Int("iters", 3, "alternating iterations to measure")
		seed    = fs.Uint64("seed", 42, "random seed")
		view    = fs.String("view", "modeled", "time view: modeled, measured, both, or csv (figure experiments)")
		p       = fs.Int("p", 16, "processor count for comparison experiments")
		k       = fs.Int("k", 50, "rank for scaling experiments")
		ks      = fs.String("ks", "10,20,30,40,50", "rank sweep for comparison experiments")
		ps      = fs.String("ps", "4,16,64", "processor sweep for scaling experiments")
		jsonP   = fs.String("json", "", "write a machine-readable BenchReport JSON for the selected figure/table3 experiments (e.g. BENCH_main.json)")
		kernels = fs.Bool("kernels", false, "run the compute-kernel micro-benchmarks (blocked vs. naive) instead of the figure experiments; with -json, write a KernelReport (e.g. BENCH_kernels.json)")
		reps    = fs.Int("reps", 3, "repetitions per kernel timing (-kernels); each row reports the best")
		threads = fs.String("threads", "1,4", "kernel pool widths to time (-kernels)")

		baseline   = fs.String("baseline", "", "with -kernels: compare against this KernelReport JSON and exit 1 on regression")
		maxRegress = fs.Float64("maxregress", 0.25, "with -baseline: max tolerated fractional drop in speedup-vs-naive per row")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *kernels {
		tlist, err := parseInts(*threads)
		if err != nil {
			return fmt.Errorf("bad -threads: %w", err)
		}
		kcfg := experiments.KernelConfig{K: *k, Threads: tlist, Reps: *reps, Seed: *seed}
		if *scale != 1.0 {
			kcfg.M = int(10000 * *scale)
			kcfg.N = int(400 * *scale)
			kcfg.HPCNodes = int(3000 * *scale)
		}
		rep := experiments.CollectKernels(kcfg)
		if *jsonP != "" {
			out, err := os.Create(*jsonP)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(out); err != nil {
				out.Close()
				return fmt.Errorf("writing %s: %w", *jsonP, err)
			}
			if err := out.Close(); err != nil {
				return fmt.Errorf("writing %s: %w", *jsonP, err)
			}
			fmt.Fprintf(stdout, "wrote %s (%d rows, schema v%d)\n", *jsonP, len(rep.Rows), rep.Version)
		} else {
			experiments.WriteKernelTable(rep, stdout)
		}
		if *baseline != "" {
			bf, err := os.Open(*baseline)
			if err != nil {
				return err
			}
			base, err := experiments.ReadKernelReport(bf)
			bf.Close()
			if err != nil {
				return err
			}
			regs := experiments.CompareKernelReports(rep, base, *maxRegress)
			if len(regs) > 0 {
				fmt.Fprintf(stderr, "nmfbench: %d kernel(s) regressed more than %.0f%% vs %s:\n",
					len(regs), 100**maxRegress, *baseline)
				for _, r := range regs {
					fmt.Fprintf(stderr, "  %s\n", r)
				}
				return errRegression
			}
			fmt.Fprintf(stdout, "no kernel regression beyond %.0f%% vs %s\n", 100**maxRegress, *baseline)
		}
		return nil
	}

	cfg := experiments.Config{
		Scale:  *scale,
		Seed:   *seed,
		Iters:  *iters,
		FixedP: *p,
		FixedK: *k,
		View:   *view,
	}
	var err error
	if cfg.Ks, err = parseInts(*ks); err != nil {
		return fmt.Errorf("bad -ks: %w", err)
	}
	if cfg.Ps, err = parseInts(*ps); err != nil {
		return fmt.Errorf("bad -ps: %w", err)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.Names()
	}
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}

	if *jsonP != "" {
		if *exp == "all" {
			// Text-only experiments have no tabular form; "all" means
			// every row-producing one here.
			ids = experiments.RowProducingNames()
		}
		rep, err := experiments.Collect(ids, cfg)
		if err != nil {
			return err
		}
		out, err := os.Create(*jsonP)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(out); err != nil {
			out.Close()
			return fmt.Errorf("writing %s: %w", *jsonP, err)
		}
		if err := out.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonP, err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d rows, schema v%d)\n", *jsonP, len(rep.Rows), rep.Version)
		return nil
	}

	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if err := experiments.Run(id, cfg, stdout); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d < 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}
