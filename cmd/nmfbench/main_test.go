package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-ks", "10,froggy"},
		{"-ps", "0"},
		{"-exp", "not-an-experiment", "-scale", "0.05"},
		{"-kernels", "-threads", "zero"},
		{"stray-arg"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestBenchFigureSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-exp", "fig3a", "-scale", "0.05", "-iters", "1", "-ks", "4", "-ps", "4"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(out.String(), "fig3a") {
		t.Errorf("output missing experiment header:\n%s", out.String())
	}
}

func TestBenchJSONReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out, errb bytes.Buffer
	args := []string{"-exp", "fig3a", "-scale", "0.05", "-iters", "1", "-ks", "4", "-ps", "4", "-json", path}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Version int              `json:"version"`
		Rows    []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if rep.Version < 1 || len(rep.Rows) == 0 {
		t.Errorf("bench report empty or unversioned: version=%d rows=%d", rep.Version, len(rep.Rows))
	}
}
