package hpcnmf_test

import (
	"math"
	"strings"
	"testing"

	"hpcnmf"
)

func TestFacadeSequential(t *testing.T) {
	a := hpcnmf.DenseFromRows([][]float64{
		{1, 0, 2, 1},
		{0, 1, 1, 0},
		{2, 1, 5, 2},
		{1, 0, 2, 1},
		{0, 2, 2, 0},
	})
	res, err := hpcnmf.Run(hpcnmf.WrapDense(a), hpcnmf.Options{K: 2, MaxIter: 30, ComputeError: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// This matrix is exactly rank 2 with a non-negative factorization,
	// so NMF should fit it nearly perfectly.
	if last := res.RelErr[len(res.RelErr)-1]; last > 1e-3 {
		t.Fatalf("relative error %g on an exactly-NMF-factorable matrix", last)
	}
}

func TestFacadeParallelAgreesWithSequential(t *testing.T) {
	ds := hpcnmf.GenerateDataset("dsyn", 0.03, 3)
	opts := hpcnmf.Options{K: 4, MaxIter: 4, Seed: 5, ComputeError: true}
	seq, err := hpcnmf.Run(ds.Matrix, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := hpcnmf.RunParallel(ds.Matrix, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := par.W.MaxDiff(seq.W); d > 1e-6 {
		t.Fatalf("parallel W differs by %g", d)
	}
	naive, err := hpcnmf.RunNaive(ds.Matrix, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := naive.H.MaxDiff(seq.H); d > 1e-6 {
		t.Fatalf("naive H differs by %g", d)
	}
	oneD, err := hpcnmf.RunOnGrid(ds.Matrix, 6, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := oneD.W.MaxDiff(seq.W); d > 1e-6 {
		t.Fatalf("1D grid W differs by %g", d)
	}
}

func TestFacadeSparse(t *testing.T) {
	ds := hpcnmf.GenerateDataset("ssyn", 0.05, 7)
	res, err := hpcnmf.RunParallel(ds.Matrix, 4, hpcnmf.Options{K: 3, MaxIter: 3, Seed: 2, ComputeError: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.W.Min() < 0 || res.H.Min() < 0 {
		t.Fatal("factors not non-negative")
	}
	if math.IsNaN(res.RelErr[len(res.RelErr)-1]) {
		t.Fatal("NaN objective")
	}
}

func TestFacadeMatrixMarket(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
3 3 3
1 1 1.0
2 2 2.0
3 3 3.0
`
	a, err := hpcnmf.ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 3 || a.At(2, 2) != 3 {
		t.Fatal("MatrixMarket parse wrong")
	}
}

func TestFacadeSolverSelection(t *testing.T) {
	ds := hpcnmf.GenerateDataset("dsyn", 0.02, 9)
	for _, s := range []hpcnmf.SolverKind{hpcnmf.SolverBPP, hpcnmf.SolverHALS, hpcnmf.SolverMU} {
		res, err := hpcnmf.RunParallel(ds.Matrix, 4, hpcnmf.Options{K: 3, MaxIter: 3, Seed: 2, Solver: s, Sweeps: 2})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !res.W.IsFinite() {
			t.Fatalf("%v: non-finite factors", s)
		}
	}
}

func TestChooseGrid(t *testing.T) {
	g := hpcnmf.ChooseGrid(100000, 50, 8)
	if g.PC != 1 {
		t.Fatalf("tall-skinny grid %dx%d", g.PR, g.PC)
	}
}

func TestGenerateDatasetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	hpcnmf.GenerateDataset("nope", 1, 0)
}

func TestFacadeSaveLoadFactor(t *testing.T) {
	dir := t.TempDir()
	w := hpcnmf.NewDense(4, 3)
	w.Set(2, 1, 7.25)
	path := dir + "/w.bin"
	if err := hpcnmf.SaveFactor(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := hpcnmf.LoadFactor(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(2, 1) != 7.25 || got.Rows != 4 || got.Cols != 3 {
		t.Fatal("factor round trip failed")
	}
	if _, err := hpcnmf.LoadFactor(dir + "/missing.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFacadeNNDSVDInit(t *testing.T) {
	ds := hpcnmf.GenerateDataset("dsyn", 0.03, 15)
	w0, h0, err := hpcnmf.NNDSVD(ds.Matrix, 3, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hpcnmf.RunParallel(ds.Matrix, 4, hpcnmf.Options{
		K: 3, MaxIter: 3, Seed: 1, InitW: w0, InitH: h0, ComputeError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RelErr) == 0 || res.W.Min() < 0 {
		t.Fatal("NNDSVD-seeded parallel run invalid")
	}
}

func TestFacadeTruncatedSVD(t *testing.T) {
	ds := hpcnmf.GenerateDataset("dsyn", 0.02, 17)
	u, sigma, v, err := hpcnmf.TruncatedSVD(ds.Matrix, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 2 || sigma[0] < sigma[1] || u.Cols != 2 || v.Cols != 2 {
		t.Fatal("SVD output malformed")
	}
}

func TestFacadeSymNMF(t *testing.T) {
	// Small symmetric similarity matrix.
	a := hpcnmf.NewDense(6, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i/3 == j/3 {
				a.Set(i, j, 1)
			} else {
				a.Set(i, j, 0.05)
			}
		}
	}
	res, err := hpcnmf.RunSymNMF(hpcnmf.WrapDense(a), hpcnmf.SymOptions{K: 2, MaxIter: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Rows != 6 || res.H.Cols != 2 || res.H.Min() < 0 {
		t.Fatal("SymNMF output malformed")
	}
}

func TestFacadeBalance(t *testing.T) {
	// A matrix with a hub column is maximally imbalanced on a 2D grid.
	rep := hpcnmf.AnalyzeBalance(syntheticGraph(400), 4, 7)
	if rep.Before <= 1 {
		t.Fatalf("hub-column graph reported balanced: %+v", rep)
	}
	bal, rowMap, colMap := hpcnmf.BalanceSparse(syntheticGraph(200), 11)
	if bal.NNZ() == 0 || len(rowMap) != 200 || len(colMap) != 200 {
		t.Fatal("BalanceSparse malformed output")
	}
}

// syntheticGraph builds a small skewed sparse matrix through the
// public API only.
func syntheticGraph(n int) *hpcnmf.CSR {
	var coords []hpcnmf.Coord
	for i := 0; i < n; i++ {
		coords = append(coords, hpcnmf.Coord{Row: i, Col: 0, Val: 1}) // hub column
		coords = append(coords, hpcnmf.Coord{Row: i, Col: (i*7 + 3) % n, Val: 1})
	}
	return hpcnmf.SparseFromCoords(n, n, coords)
}

func TestFacadeDenseMatrixMarket(t *testing.T) {
	in := "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"
	a, err := hpcnmf.ReadDenseMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Column-major: a[0][0]=1 a[1][0]=2 a[0][1]=3 a[1][1]=4.
	if a.At(1, 0) != 2 || a.At(0, 1) != 3 {
		t.Fatal("array parse wrong")
	}
}
