// Package hpcnmf is a Go reproduction of "A High-Performance Parallel
// Algorithm for Nonnegative Matrix Factorization" (Kannan, Ballard,
// Park — PPoPP 2016). It factorizes a non-negative matrix A (m×n)
// into non-negative low-rank factors W (m×k) and H (k×n) minimizing
// ‖A − WH‖_F, using the alternating non-negative least squares (ANLS)
// framework with a choice of local solvers (BPP, active-set, MU,
// HALS), sequentially or in parallel.
//
// The parallel algorithms run on an in-process message-passing
// runtime that mirrors MPI (each rank is a goroutine; collectives use
// the real distributed algorithms), so the communication structure —
// message and word counts per rank — is exactly that of the paper's
// MPI implementation. Results carry a per-iteration task breakdown in
// both measured wall time and α-β-γ modeled time.
//
// Quick start:
//
//	a := hpcnmf.GenerateDataset("dsyn", 0.1, 42)
//	res, err := hpcnmf.RunParallel(a.Matrix, 16, hpcnmf.Options{K: 10, MaxIter: 20, ComputeError: true})
//	// res.W, res.H, res.RelErr, res.Breakdown
package hpcnmf

import (
	"fmt"
	"io"
	"os"

	"hpcnmf/internal/core"
	"hpcnmf/internal/costmodel"
	"hpcnmf/internal/datasets"
	"hpcnmf/internal/fault"
	"hpcnmf/internal/grid"
	"hpcnmf/internal/mat"
	"hpcnmf/internal/metrics"
	"hpcnmf/internal/mpi"
	"hpcnmf/internal/ooc"
	"hpcnmf/internal/perf"
	"hpcnmf/internal/sparse"
	"hpcnmf/internal/trace"
)

// Dense is a row-major dense matrix (see the methods on mat.Dense).
type Dense = mat.Dense

// CSR is a compressed-sparse-row matrix.
type CSR = sparse.CSR

// Matrix abstracts the data matrix over dense and sparse storage.
type Matrix = core.Matrix

// Options configures a factorization run.
type Options = core.Options

// Result reports a finished factorization: factors, error history,
// and the per-iteration task breakdown.
type Result = core.Result

// Grid is a pr×pc processor grid for RunOnGrid.
type Grid = grid.Grid

// SolverKind selects the local non-negative least squares method.
type SolverKind = core.SolverKind

// Local NLS solvers (paper §4): BPP is the default and the paper's
// choice; ActiveSet is the classical exact method; MU and HALS are
// the inexact update rules.
const (
	SolverBPP       = core.SolverBPP
	SolverActiveSet = core.SolverActiveSet
	SolverMU        = core.SolverMU
	SolverHALS      = core.SolverHALS
	SolverPGD       = core.SolverPGD
)

// Updater is the algorithm plug-in seam of the drivers' shared
// communication skeleton (the MPI-FAUN framework generalization; see
// DESIGN decision 14): the skeleton owns the collectives, overlap
// schedule, Gram/cross-product pipeline, checkpointing, and tracing,
// and the updater supplies only the local factor update from the
// precomputed Gram and right-hand side. The four built-in algorithms
// (MU, HALS, PGD, BPP) enter through Options.Solver; a custom rule
// plugs in via the Options.Update per-rank factory.
type Updater = core.Updater

// Observability: traces, metrics, and run reports (see README
// "Observability"). Enable tracing with Options.TraceEvents and read
// Result.Trace; attach a MetricsRegistry via Options.Metrics; build a
// Report from any finished Result with NewReport.

// Trace is a merged per-rank event timeline (Options.TraceEvents);
// write it with WriteChrome/WriteChromeFile and open in Perfetto.
type Trace = trace.Trace

// MetricsRegistry collects counters, gauges, and latency histograms
// from a run; it is safe for concurrent use across rank goroutines.
// WritePrometheus renders it in the Prometheus text exposition format.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty metrics registry for
// Options.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Progress is one iteration's convergence-telemetry record, delivered
// through Options.Progress and collected into Result.Progress.
type Progress = core.Progress

// SpanContext is the portable identity of a trace span; set
// Options.Span to parent a run's spans under an external request.
type SpanContext = trace.SpanContext

// Report is the versioned machine-readable record of one run.
type Report = core.Report

// DatasetInfo describes the factorized matrix inside a Report.
type DatasetInfo = core.DatasetInfo

// DescribeMatrix builds the DatasetInfo for a data matrix.
func DescribeMatrix(name string, a Matrix) DatasetInfo { return core.DescribeMatrix(name, a) }

// NewReport assembles the run report for a finished Result. p is the
// processor count (1 for sequential); tracePath may be empty.
func NewReport(ds DatasetInfo, p int, opts Options, res *Result, tracePath string) *Report {
	return core.NewReport(ds, p, opts, res, tracePath)
}

// ParseReport reads a report written by Report.WriteJSON.
func ParseReport(r io.Reader) (*Report, error) { return core.ParseReport(r) }

// Fault tolerance: deterministic fault injection, typed rank-failure
// errors, and checkpoint/restart (see README "Fault tolerance").

// FaultInjector delays, drops, or kills ranks at chosen collective
// call-sites; arm one via Options.Fault. Build it from a spec string
// with ParseFault or programmatically with fault.New.
type FaultInjector = fault.Injector

// ParseFault builds a fault injector from a ';'-separated spec string,
// e.g. "kill:AllReduce:rank=2:call=3" or "delay:AllGather:rank=1:d=50ms"
// (see internal/fault for the grammar).
func ParseFault(spec string) (*FaultInjector, error) { return fault.Parse(spec) }

// RankFailedError is the typed error every surviving rank observes
// when a rank dies or a communication deadline expires; retrieve it
// from a failed run's error with errors.As to attribute the failure.
type RankFailedError = mpi.RankFailedError

// Failure causes carried inside a RankFailedError (match with errors.Is).
var (
	ErrInjectedKill = mpi.ErrInjectedKill
	ErrCommDeadline = mpi.ErrDeadline
)

// Checkpoint is a restartable factorization snapshot (factors plus a
// versioned header). Enable periodic checkpointing with
// Options.CheckpointDir / Options.CheckpointEvery; load one with
// LoadCheckpoint and continue it by rewriting the options with
// Checkpoint.Resume — the resumed run recomputes the remaining
// iterations bitwise-identically to an uninterrupted one.
type Checkpoint = core.Checkpoint

// CheckpointMeta is the checkpoint's versioned header.
type CheckpointMeta = core.CheckpointMeta

// LoadCheckpoint reads dir/checkpoint.bin written by a checkpointing
// run.
func LoadCheckpoint(dir string) (*Checkpoint, error) { return core.LoadCheckpoint(dir) }

// WriteCheckpoint atomically replaces dir/checkpoint.bin.
func WriteCheckpoint(dir string, ck *Checkpoint) error { return core.WriteCheckpoint(dir, ck) }

// NewDense returns a zero dense matrix with the given shape.
func NewDense(rows, cols int) *Dense { return mat.NewDense(rows, cols) }

// DenseFromRows builds a dense matrix from row slices.
func DenseFromRows(rows [][]float64) *Dense { return mat.FromRows(rows) }

// WrapDense adapts a dense matrix as the data-matrix input.
func WrapDense(d *Dense) Matrix { return core.WrapDense(d) }

// WrapSparse adapts a CSR matrix as the data-matrix input.
func WrapSparse(s *CSR) Matrix { return core.WrapSparse(s) }

// UnwrapSparse returns the CSR matrix behind a WrapSparse value
// (nil, false for dense-backed inputs).
func UnwrapSparse(a Matrix) (*CSR, bool) { return core.UnwrapSparse(a) }

// SparseFromCoords builds a CSR matrix from coordinate entries.
func SparseFromCoords(rows, cols int, entries []sparse.Coord) *CSR {
	return sparse.FromCoords(rows, cols, entries)
}

// Coord is a coordinate-format sparse entry.
type Coord = sparse.Coord

// ReadMatrixMarket parses a MatrixMarket coordinate-format matrix.
func ReadMatrixMarket(r io.Reader) (*CSR, error) { return sparse.ReadMatrixMarket(r) }

// ReadDenseMatrixMarket parses a MatrixMarket array-format dense
// matrix.
func ReadDenseMatrixMarket(r io.Reader) (*Dense, error) { return mat.ReadMatrixMarketArray(r) }

// SaveFactor writes a factor matrix to path in the library's compact
// binary format (checkpointing).
func SaveFactor(path string, f *Dense) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteBinary(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// LoadFactor reads a factor matrix written by SaveFactor.
func LoadFactor(path string) (*Dense, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return mat.ReadBinaryStrict(in)
}

// Run factorizes A ≈ W·H sequentially (ANLS, Algorithm 1).
func Run(a Matrix, opts Options) (*Result, error) { return core.RunSequential(a, opts) }

// Out-of-core factorization: datasets larger than RAM live in a tiled
// on-disk format (written by WriteTiled or `datagen -tiled`) and are
// streamed in row panels through a prefetch pipeline that loads tile
// t+1 while the updater consumes tile t (see README "Out-of-core
// datasets" and DESIGN decision 15).

// TileFile is an open out-of-core tile file.
type TileFile = ooc.File

// OOCStats is the tile-I/O accounting of an out-of-core run
// (Result.OOC): bytes streamed, loader vs wait time, and the fraction
// of I/O hidden behind compute.
type OOCStats = core.OOCStats

// Tile-reader backends for OpenTiledBackend.
const (
	TileBackendAuto     = ooc.BackendAuto
	TileBackendMmap     = ooc.BackendMmap
	TileBackendReaderAt = ooc.BackendReaderAt
)

// DefaultTileDepth is the default prefetch depth of the out-of-core
// tile pipeline: tiles loaded ahead of the one being consumed.
const DefaultTileDepth = ooc.DefaultDepth

// OpenTiled opens a tile file with the best available backend (mmap
// where supported, chunked ReaderAt otherwise). The header is
// CRC-validated and the file length must match it exactly.
func OpenTiled(path string) (*TileFile, error) { return ooc.Open(path) }

// OpenTiledBackend opens a tile file with an explicit reader backend.
func OpenTiledBackend(path, backend string) (*TileFile, error) {
	return ooc.OpenBackend(path, backend)
}

// WriteTiled writes an in-core dense matrix as a tile file with
// tileRows-row panels (≤ 0 picks a ~8 MiB default).
func WriteTiled(path string, d *Dense, tileRows int) error {
	return ooc.WriteMatrix(path, d, tileRows)
}

// RunOutOfCore factorizes a tile file with the streaming sequential
// skeleton: factors stay in memory, A is read in row panels with
// prefetch depth tiles in flight (≤ 0 picks double buffering). The
// result — factors and error history — is bitwise identical to Run on
// the same matrix for every built-in updater, any tile size, and any
// KernelThreads; Result.OOC reports how much tile I/O was hidden
// behind compute.
func RunOutOfCore(f *TileFile, depth int, opts Options) (*Result, error) {
	return core.RunOutOfCore(f, depth, opts)
}

// DescribeTiled builds the DatasetInfo for a tile file without
// touching its payload.
func DescribeTiled(name string, f *TileFile) DatasetInfo { return core.DescribeTiled(name, f) }

// RunNaive factorizes in parallel with the naive double-partitioned
// algorithm (Algorithm 2) on p simulated ranks — the baseline whose
// communication volume HPC-NMF improves on.
func RunNaive(a Matrix, p int, opts Options) (*Result, error) { return core.RunNaive(a, p, opts) }

// RunParallel factorizes with HPC-NMF (Algorithm 3) on p simulated
// ranks, choosing the processor grid automatically: the α-β-γ cost
// model prices every pr×pc factorization of p and the run uses the
// argmin (Result.Grid, Result.GridAuto, Result.GridPredictedSeconds
// record the choice). When the feasibility rule k ≤ min(m/pr, n/pc)
// rejects every factorization, it falls back to the bandwidth
// heuristic ChooseGrid so small problems still run.
func RunParallel(a Matrix, p int, opts Options) (*Result, error) {
	return core.RunParallelAuto(a, p, opts)
}

// RunOnGrid factorizes with HPC-NMF on an explicit pr×pc grid.
// Use pr=p, pc=1 for the paper's HPC-NMF-1D variant.
func RunOnGrid(a Matrix, pr, pc int, opts Options) (*Result, error) {
	return core.RunHPC(a, grid.New(pr, pc), opts)
}

// ChooseGrid returns the communication-minimizing grid for an m×n
// matrix on p processors by the bandwidth heuristic (m/pr ≈ n/pc).
func ChooseGrid(m, n, p int) Grid { return grid.Choose(m, n, p) }

// ErrNoFeasibleGrid is wrapped by AutoGrid's and PredictGrids' error
// when no pr×pc factorization of p passes the feasibility rules
// pr ≤ m, pc ≤ n, k ≤ min(m/pr, n/pc); match with errors.Is.
var ErrNoFeasibleGrid = grid.ErrNoFeasibleGrid

// AutoGrid picks the grid with the minimum modeled per-iteration time
// for factorizing a on p processors at rank k — the §5.2 grid
// analysis as a procedure, priced under Edison-like machine
// constants. It returns an error wrapping ErrNoFeasibleGrid when no
// factorization of p fits the problem shape.
func AutoGrid(a Matrix, k, p int) (Grid, error) {
	m, n := a.Dims()
	e := perf.Edison()
	g, _, err := costmodel.AutoGrid(m, n, k, p, int64(a.NNZ()), e.Alpha, e.Beta, e.Gamma)
	return g, err
}

// GridCandidate pairs one feasible grid with its modeled
// per-iteration cost in seconds (see PredictGrids).
type GridCandidate = costmodel.GridCandidate

// PredictGrids prices every feasible pr×pc factorization of p under
// the cost model and returns them cheapest first — the table behind
// AutoGrid, useful for auditing why a grid was picked.
func PredictGrids(a Matrix, k, p int) ([]GridCandidate, error) {
	m, n := a.Dims()
	e := perf.Edison()
	return costmodel.Grids(m, n, k, p, int64(a.NNZ()), e.Alpha, e.Beta, e.Gamma)
}

// Advice is a per-algorithm cost forecast from the α-β-γ model.
type Advice = costmodel.Advice

// Advise predicts the per-iteration cost of Naive, HPC-NMF-1D and
// HPC-NMF-2D for the given problem under Edison-like machine
// constants, ranked fastest first — the quantitative form of the
// paper's algorithm-selection guidance.
func Advise(a Matrix, k, p int) []Advice {
	m, n := a.Dims()
	e := perf.Edison()
	return costmodel.Advise(m, n, k, p, int64(a.NNZ()), e.Alpha, e.Beta, e.Gamma)
}

// AlgorithmGridChoice is one row of the joint algorithm × grid
// forecast: an update rule on its modeled-best grid, with both the
// per-iteration price and the iterations-to-tolerance-scaled total.
type AlgorithmGridChoice = costmodel.AlgorithmGridChoice

// AdviseAlgorithmGrid prices algorithm × grid jointly for the HPC
// skeleton: every built-in updater (MU, HALS, PGD, BPP) is paired
// with its cost-model-optimal grid, its per-updater NLS flop
// coefficients are added to the skeleton forecast, and the total is
// scaled by its relative iterations-to-tolerance. Rows come back
// cheapest first — the table behind `nmfrun -alg auto`'s updater
// pick. The error wraps ErrNoFeasibleGrid when no factorization of p
// fits the problem.
func AdviseAlgorithmGrid(a Matrix, k, p int) ([]AlgorithmGridChoice, error) {
	m, n := a.Dims()
	e := perf.Edison()
	return costmodel.AutoAlgorithmGrid(m, n, k, p, e.Alpha, e.Beta, e.Gamma,
		func(grid.Grid) int64 { return int64(a.NNZ()) / int64(p) })
}

// NNDSVD computes the non-negative double SVD initialization of
// Boutsidis & Gallopoulos. Pass the returned factors via
// Options.InitW/InitH; fillMean replaces zeros with the matrix mean /
// k ("NNDSVDa"), required for solvers that cannot reactivate zeros
// (MU).
func NNDSVD(a Matrix, k int, fillMean bool, seed uint64) (w, h *Dense, err error) {
	return core.NNDSVD(a, k, fillMean, seed)
}

// TruncatedSVD returns the top-k singular triplets of A
// (A ≈ U·diag(sigma)·Vᵀ) via subspace iteration; sparse inputs stay
// sparse.
func TruncatedSVD(a Matrix, k, iters int, seed uint64) (u *Dense, sigma []float64, v *Dense, err error) {
	return core.TruncatedSVD(a, k, iters, seed)
}

// RankPoint is one entry of a rank sweep (RankSweep).
type RankPoint = core.RankPoint

// RankSweep factorizes A at each candidate rank and returns the final
// relative error per rank, the curve used to choose k by its elbow.
func RankSweep(a Matrix, ks []int, opts Options) ([]RankPoint, error) {
	return core.RankSweep(a, ks, opts)
}

// Elbow picks the rank after which additional components stop paying
// (see core.Elbow for the rule); frac ≤ 0 selects the default 0.1.
func Elbow(points []RankPoint, frac float64) RankPoint { return core.Elbow(points, frac) }

// Projector projects new data columns onto a fixed basis W — the
// H-subproblem NNLS solve with W frozen, off a cached WᵀW Gram. It is
// the shared cheap-serve path of the streaming factorizer and the
// internal/serve batching layer, and degrades gracefully (Tikhonov
// damping) when the basis is rank-deficient.
type Projector = core.Projector

// NewProjector caches the Gram of basis w and prepares reusable solver
// resources; the zero SolverKind is BPP, and sweeps applies to the
// inexact solvers. The returned projector is single-goroutine (it owns
// a workspace arena).
func NewProjector(w *Dense, kind SolverKind, sweeps int) (*Projector, error) {
	return core.NewProjector(w, kind.New(sweeps), nil)
}

// Streaming maintains an NMF of a sliding window of data columns —
// the incremental video scenario of §6.1.1. Push new columns as they
// arrive; read Factors, RelErr, and per-column Residual /
// ForegroundEnergy.
type Streaming = core.Streaming

// StreamingOptions configures a Streaming factorizer.
type StreamingOptions = core.StreamingOptions

// NewStreaming creates a sliding-window factorizer for m-row columns.
func NewStreaming(m int, opts StreamingOptions) (*Streaming, error) {
	return core.NewStreaming(m, opts)
}

// SymOptions configures symmetric NMF (A ≈ H·Hᵀ).
type SymOptions = core.SymOptions

// SymResult reports a symmetric factorization.
type SymResult = core.SymResult

// RunSymNMF computes symmetric NMF A ≈ H·Hᵀ for a symmetric
// non-negative matrix (graph clustering; Kuang, Ding & Park, cited by
// the paper as an NMF application).
func RunSymNMF(a Matrix, opts SymOptions) (*SymResult, error) { return core.RunSymNMF(a, opts) }

// RunSymNMFParallel runs symmetric NMF on p simulated ranks; with a
// shared seed it computes the same iterates as RunSymNMF.
func RunSymNMFParallel(a Matrix, p int, opts SymOptions) (*SymResult, error) {
	return core.RunSymNMFParallel(a, p, opts)
}

// Dataset is a generated evaluation workload.
type Dataset = datasets.Dataset

// BagOfWordsSpec parameterizes GenerateBagOfWords.
type BagOfWordsSpec = datasets.BagOfWordsSpec

// GenerateBagOfWords builds a synthetic term-document count matrix
// with planted topics and Zipf word frequencies — the text-mining
// workload of the paper's introduction. The planted topic of document
// j is (j·Topics)/Docs.
func GenerateBagOfWords(spec BagOfWordsSpec, seed uint64) *CSR {
	return datasets.BagOfWords(spec, seed)
}

// GenerateDataset builds one of the paper's four evaluation workloads
// ("dsyn", "ssyn", "video", "webbase") at the given scale (1.0 =
// harness defaults; smaller shrinks proportionally). It panics on an
// unknown name; use datasets.ByName for an error-returning variant.
func GenerateDataset(name string, scale float64, seed uint64) Dataset {
	ds, err := datasets.ByName(name, datasets.Scale(scale), seed)
	if err != nil {
		panic(fmt.Sprintf("hpcnmf: %v", err))
	}
	return ds
}
