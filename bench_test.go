// Benchmarks regenerating every evaluation artifact of the paper
// (one benchmark per table/figure — see DESIGN.md's experiment index)
// plus ablations for the design decisions and micro-benchmarks of the
// kernels. The figure benchmarks run reduced sweeps so the whole
// suite completes in minutes; `cmd/nmfbench` runs the full-scale
// versions.
//
// Custom metrics: "modeled-s/iter" is the α-β-γ per-iteration time of
// the HPC-NMF-2D configuration (the paper's headline quantity);
// "speedup-vs-naive" is Naive's modeled time divided by HPC-2D's.
package hpcnmf_test

import (
	"fmt"
	"io"
	"testing"

	"hpcnmf"
	"hpcnmf/internal/core"
	"hpcnmf/internal/datasets"
	"hpcnmf/internal/experiments"
	"hpcnmf/internal/mat"
	"hpcnmf/internal/mpi"
	"hpcnmf/internal/nnls"
	"hpcnmf/internal/par"
	"hpcnmf/internal/perf"
	"hpcnmf/internal/rng"
	"hpcnmf/internal/sparse"
)

// benchConfig is the reduced sweep used by the figure benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:  0.25,
		Seed:   42,
		Iters:  2,
		Ks:     []int{10, 50},
		Ps:     []int{4, 16},
		FixedP: 16,
		FixedK: 50,
		View:   "modeled",
	}
}

// benchFigure runs one figure's sweep per benchmark iteration and
// reports the paper's headline metrics from the final sweep.
func benchFigure(b *testing.B, dataset string, scaling bool) {
	b.Helper()
	cfg := benchConfig()
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		if scaling {
			rows, err = experiments.Scaling(dataset, cfg)
		} else {
			rows, err = experiments.Comparison(dataset, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	var naive, hpc2d float64
	for _, r := range rows {
		pick := (scaling && r.P == cfg.Ps[len(cfg.Ps)-1]) || (!scaling && r.K == cfg.Ks[len(cfg.Ks)-1])
		if !pick {
			continue
		}
		switch r.Alg {
		case experiments.AlgNaive:
			naive = r.ModeledSeconds()
		case experiments.AlgHPC2D:
			hpc2d = r.ModeledSeconds()
		}
	}
	if hpc2d > 0 {
		b.ReportMetric(hpc2d, "modeled-s/iter")
		b.ReportMetric(naive/hpc2d, "speedup-vs-naive")
	}
}

// Figure 3, left column: rank sweeps at fixed p.
func BenchmarkFig3a_SSYNComparison(b *testing.B)    { benchFigure(b, "ssyn", false) }
func BenchmarkFig3c_DSYNComparison(b *testing.B)    { benchFigure(b, "dsyn", false) }
func BenchmarkFig3e_WebbaseComparison(b *testing.B) { benchFigure(b, "webbase", false) }
func BenchmarkFig3g_VideoComparison(b *testing.B)   { benchFigure(b, "video", false) }

// Figure 3, right column: strong scaling at fixed k.
func BenchmarkFig3b_SSYNScaling(b *testing.B)    { benchFigure(b, "ssyn", true) }
func BenchmarkFig3d_DSYNScaling(b *testing.B)    { benchFigure(b, "dsyn", true) }
func BenchmarkFig3f_WebbaseScaling(b *testing.B) { benchFigure(b, "webbase", true) }
func BenchmarkFig3h_VideoScaling(b *testing.B)   { benchFigure(b, "video", true) }

// BenchmarkTable2Validation reruns the Table 2 exact-count validation
// (analytical words/messages vs counted traffic).
func BenchmarkTable2Validation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run("table2", cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the per-iteration running-time table.
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run("table3", cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMUSparseIteration reproduces the §6.2 qualitative claim:
// one MU iteration on a large sparse matrix runs in seconds in an
// in-memory implementation (vs ~50 min/iteration cited for Hadoop).
func BenchmarkMUSparseIteration(b *testing.B) {
	m, n := 1<<13, 1<<12
	a := core.WrapSparse(datasets.SSYN(m, n, 0.006, 42))
	opts := core.Options{K: 8, MaxIter: 1, Seed: 42, Solver: core.SolverMU}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunParallelAuto(a, 16, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-algorithm, per-dataset single-iteration benchmarks (the
// cells of Table 3, directly benchable). ---

func benchOneIteration(b *testing.B, dataset, alg string, p int) {
	b.Helper()
	ds, err := datasets.ByName(dataset, 0.25, 42)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{K: 50, MaxIter: 1, Seed: 42}
	run := func() (*core.Result, error) {
		switch alg {
		case "naive":
			return core.RunNaive(ds.Matrix, p, opts)
		case "hpc1d":
			return hpcnmf.RunOnGrid(ds.Matrix, p, 1, opts)
		default:
			return core.RunParallelAuto(ds.Matrix, p, opts)
		}
	}
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		if res, err = run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Breakdown.ModeledTotal(), "modeled-s/iter")
}

func BenchmarkIterNaiveSSYN(b *testing.B)    { benchOneIteration(b, "ssyn", "naive", 16) }
func BenchmarkIterHPC1DSSYN(b *testing.B)    { benchOneIteration(b, "ssyn", "hpc1d", 16) }
func BenchmarkIterHPC2DSSYN(b *testing.B)    { benchOneIteration(b, "ssyn", "hpc2d", 16) }
func BenchmarkIterNaiveDSYN(b *testing.B)    { benchOneIteration(b, "dsyn", "naive", 16) }
func BenchmarkIterHPC2DDSYN(b *testing.B)    { benchOneIteration(b, "dsyn", "hpc2d", 16) }
func BenchmarkIterHPC1DVideo(b *testing.B)   { benchOneIteration(b, "video", "hpc1d", 16) }
func BenchmarkIterHPC2DWebbase(b *testing.B) { benchOneIteration(b, "webbase", "hpc2d", 16) }

// --- Ablations (DESIGN.md decisions) ---

// BenchmarkAblationCollectives compares the O(log p) tree all-gather
// against the naive linear exchange at p=16: same words, 4x the
// critical-path messages (decision 1).
func BenchmarkAblationCollectives(b *testing.B) {
	const p = 16
	const words = 4096
	for _, variant := range []string{"tree", "linear"} {
		b.Run(variant, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(p)
				w.Run(func(c *mpi.Comm) {
					data := make([]float64, words)
					for rep := 0; rep < 8; rep++ {
						if variant == "tree" {
							c.AllGather(data)
						} else {
							counts := make([]int, p)
							for j := range counts {
								counts[j] = words
							}
							c.AllGatherLinear(data, counts)
						}
					}
				})
				msgs = w.Traffic()[0].Get(mpi.CatAllGather).Msgs
			}
			b.ReportMetric(float64(msgs)/8, "msgs/op")
		})
	}
}

// BenchmarkAblationBPPGrouping quantifies the passive-set column
// grouping optimization (decision 3): grouped columns share one
// Cholesky factorization.
func BenchmarkAblationBPPGrouping(b *testing.B) {
	k, r := 50, 400
	s := rng.New(9)
	c := mat.NewDense(300, k)
	c.RandomUniform(s)
	g := mat.Gram(c)
	bm := mat.NewDense(300, r)
	for i := range bm.Data {
		bm.Data[i] = s.Float64()*2 - 0.5
	}
	f := mat.MulAtB(c, bm)
	for _, grouping := range []bool{true, false} {
		name := "grouped"
		if !grouping {
			name = "percolumn"
		}
		b.Run(name, func(b *testing.B) {
			solver := &nnls.BPP{Grouping: grouping}
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.Solve(g, f, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSolvers compares the local NLS methods at equal
// problem size (the paper's §7 discussion: BPP costs more per
// iteration but converges in fewer outer iterations).
func BenchmarkAblationSolvers(b *testing.B) {
	a := core.WrapDense(datasets.DSYN(432, 288, 42))
	for _, kind := range []core.SolverKind{core.SolverBPP, core.SolverActiveSet, core.SolverMU, core.SolverHALS} {
		b.Run(kind.String(), func(b *testing.B) {
			opts := core.Options{K: 20, MaxIter: 2, Seed: 42, Solver: kind, Sweeps: 1}
			for i := 0; i < b.N; i++ {
				if _, err := core.RunSequential(a, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Kernel micro-benchmarks ---

func BenchmarkKernelMulABt(b *testing.B) {
	s := rng.New(1)
	a := mat.NewDense(1024, 64)
	a.RandomUniform(s)
	h := mat.NewDense(50, 64)
	h.RandomUniform(s)
	b.SetBytes(int64(8 * a.Rows * a.Cols))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulABt(a, h)
	}
}

func BenchmarkKernelGram(b *testing.B) {
	s := rng.New(2)
	a := mat.NewDense(4096, 50)
	a.RandomUniform(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Gram(a)
	}
}

func BenchmarkKernelSpMM(b *testing.B) {
	a := sparse.RandomER(4096, 2048, 0.005, rng.New(3))
	h := mat.NewDense(2048, 50)
	h.RandomUniform(rng.New(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulBt(h)
	}
}

func BenchmarkKernelCholesky(b *testing.B) {
	s := rng.New(5)
	c := mat.NewDense(200, 50)
	c.RandomUniform(s)
	g := mat.Gram(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.Cholesky(g); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKernelImpls runs one kernel under the three implementations the
// drivers can pick from: the retained naive reference loops, the
// blocked/register-tiled kernels inline, and the same kernels on a
// 4-worker pool. `go test -bench=Kernel -benchtime=1x` is the CI smoke
// pass over all of them.
func benchKernelImpls(b *testing.B, naive func(), blocked func(p *par.Pool)) {
	b.Helper()
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naive()
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blocked(nil)
		}
	})
	b.Run("pooled4", func(b *testing.B) {
		pool := par.NewPool(4)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blocked(pool)
		}
	})
}

func BenchmarkKernelMulAtB(b *testing.B) {
	s := rng.New(7)
	w := mat.NewDense(2048, 50)
	w.RandomUniform(s)
	a := mat.NewDense(2048, 256)
	a.RandomUniform(s)
	c := mat.NewDense(50, 256)
	benchKernelImpls(b,
		func() { c.Zero(); mat.RefMulAtBAddTo(c, w, a) },
		func(p *par.Pool) { mat.ParMulAtBTo(c, w, a, p) })
}

func BenchmarkKernelGramImpls(b *testing.B) {
	s := rng.New(8)
	a := mat.NewDense(4096, 50)
	a.RandomUniform(s)
	g := mat.NewDense(50, 50)
	benchKernelImpls(b,
		func() { g.Zero(); mat.RefGramAddTo(g, a) },
		func(p *par.Pool) { mat.ParGramTo(g, a, p) })
}

func BenchmarkKernelMulABtImpls(b *testing.B) {
	s := rng.New(9)
	a := mat.NewDense(2048, 256)
	a.RandomUniform(s)
	h := mat.NewDense(50, 256)
	h.RandomUniform(s)
	c := mat.NewDense(2048, 50)
	benchKernelImpls(b,
		func() { mat.RefMulABtTo(c, a, h) },
		func(p *par.Pool) { mat.ParMulABtTo(c, a, h, p) })
}

func BenchmarkKernelSpMMImpls(b *testing.B) {
	a := sparse.RandomER(4096, 2048, 0.005, rng.New(10))
	ht := mat.NewDense(2048, 50)
	ht.RandomUniform(rng.New(11))
	c := mat.NewDense(4096, 50)
	benchKernelImpls(b,
		func() { a.MulBtTo(c, ht, nil) },
		func(p *par.Pool) { a.MulBtTo(c, ht, p) })
}

func BenchmarkKernelBPP(b *testing.B) {
	s := rng.New(6)
	c := mat.NewDense(200, 30)
	c.RandomUniform(s)
	g := mat.Gram(c)
	bm := mat.NewDense(200, 100)
	for i := range bm.Data {
		bm.Data[i] = s.Float64()*2 - 0.5
	}
	f := mat.MulAtB(c, bm)
	solver := nnls.NewBPP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.Solve(g, f, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollAllReduce(b *testing.B) {
	const p = 16
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(p)
		w.Run(func(c *mpi.Comm) {
			data := make([]float64, 2500) // k=50 Gram matrix
			for rep := 0; rep < 16; rep++ {
				c.AllReduce(data)
			}
		})
	}
}

func BenchmarkCollReduceScatter(b *testing.B) {
	const p = 16
	counts := make([]int, p)
	for i := range counts {
		counts[i] = 512
	}
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(p)
		w.Run(func(c *mpi.Comm) {
			data := make([]float64, 512*p)
			for rep := 0; rep < 16; rep++ {
				c.ReduceScatter(data, counts)
			}
		})
	}
}

// BenchmarkAblationObjective quantifies DESIGN decision 4: the
// byproduct-based objective (‖A‖² − 2⟨WᵀA,H⟩ + ⟨WᵀW,HHᵀ⟩) versus
// forming the full residual A − W·H.
func BenchmarkAblationObjective(b *testing.B) {
	ds, err := datasets.ByName("dsyn", 0.5, 42)
	if err != nil {
		b.Fatal(err)
	}
	d, _ := core.UnwrapDense(ds.Matrix)
	m, n := d.Rows, d.Cols
	const k = 50
	w := mat.NewDense(m, k)
	w.RandomUniform(rng.New(1))
	h := mat.NewDense(k, n)
	h.RandomUniform(rng.New(2))
	normA2 := d.SquaredFrobeniusNorm()
	b.Run("byproduct", func(b *testing.B) {
		// The iteration already owns WᵀA and WᵀW; only the Gram of H
		// and two dots are extra.
		wta := mat.MulAtB(w, d)
		wtw := mat.Gram(w)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hg := mat.GramT(h)
			_ = normA2 - 2*mat.Dot(wta, h) + mat.Dot(wtw, hg)
		}
	})
	b.Run("residual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := mat.Mul(w, h)
			r.Sub(d)
			_ = r.SquaredFrobeniusNorm()
		}
	})
}

// BenchmarkAblationCommChunk measures the §5 blocked-pipeline trade:
// identical words, ⌈k/chunk⌉× the messages, smaller temporaries.
func BenchmarkAblationCommChunk(b *testing.B) {
	ds, err := datasets.ByName("dsyn", 0.25, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, chunk := range []int{0, 10, 2} {
		name := "unblocked"
		if chunk > 0 {
			name = fmt.Sprintf("chunk%d", chunk)
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{K: 20, MaxIter: 1, Seed: 42, CommChunk: chunk}
			var res *core.Result
			for i := 0; i < b.N; i++ {
				if res, err = core.RunParallelAuto(ds.Matrix, 16, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Breakdown.Msgs[perf.TaskAllGather]), "allgather-msgs")
		})
	}
}
