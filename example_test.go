package hpcnmf_test

import (
	"fmt"

	"hpcnmf"
)

// ExampleRun factorizes a tiny exactly-rank-1 matrix: every row is a
// multiple of the same non-negative pattern, so NMF with k=1 fits it
// essentially exactly.
func ExampleRun() {
	a := hpcnmf.DenseFromRows([][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{3, 6, 9},
	})
	res, err := hpcnmf.Run(hpcnmf.WrapDense(a), hpcnmf.Options{
		K: 1, MaxIter: 20, Seed: 1, ComputeError: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("relative error below 1e-10: %v\n", res.RelErr[len(res.RelErr)-1] < 1e-10)
	fmt.Printf("factors non-negative: %v\n", res.W.Min() >= 0 && res.H.Min() >= 0)
	// Output:
	// relative error below 1e-10: true
	// factors non-negative: true
}

// ExampleRunParallel shows the paper's central reproducibility
// property (§6.1.3): the parallel algorithm computes the same factors
// as the sequential one for a shared seed.
func ExampleRunParallel() {
	ds := hpcnmf.GenerateDataset("dsyn", 0.02, 11)
	opts := hpcnmf.Options{K: 3, MaxIter: 3, Seed: 4}
	seq, err := hpcnmf.Run(ds.Matrix, opts)
	if err != nil {
		panic(err)
	}
	par, err := hpcnmf.RunParallel(ds.Matrix, 4, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("same result on 4 ranks: %v\n", par.W.MaxDiff(seq.W) < 1e-8)
	// Output:
	// same result on 4 ranks: true
}

// ExampleChooseGrid shows the §5 grid rule: squarish matrices get 2D
// grids, tall-skinny matrices degenerate to 1D.
func ExampleChooseGrid() {
	square := hpcnmf.ChooseGrid(10000, 10000, 16)
	tall := hpcnmf.ChooseGrid(1000000, 100, 16)
	fmt.Printf("square matrix: %dx%d grid\n", square.PR, square.PC)
	fmt.Printf("tall-skinny:   %dx%d grid\n", tall.PR, tall.PC)
	// Output:
	// square matrix: 4x4 grid
	// tall-skinny:   16x1 grid
}

// ExampleRunNCP decomposes an exactly rank-1 tensor.
func ExampleRunNCP() {
	a := hpcnmf.DenseFromRows([][]float64{{1}, {2}})
	b := hpcnmf.DenseFromRows([][]float64{{1}, {3}})
	c := hpcnmf.DenseFromRows([][]float64{{2}, {1}})
	t := hpcnmf.TensorFromKruskal(a, b, c)
	res, err := hpcnmf.RunNCP(t, hpcnmf.NCPOptions{Rank: 1, MaxIter: 50, Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank-1 tensor recovered: %v\n", res.RelErr[len(res.RelErr)-1] < 1e-6)
	// Output:
	// rank-1 tensor recovered: true
}

// ExampleOptions_regularization shows L1 regularization sparsifying
// the factors (the sparse-NMF variant).
func ExampleOptions_regularization() {
	ds := hpcnmf.GenerateDataset("dsyn", 0.02, 21)
	plain, err := hpcnmf.Run(ds.Matrix, hpcnmf.Options{K: 4, MaxIter: 10, Seed: 2})
	if err != nil {
		panic(err)
	}
	sparse, err := hpcnmf.Run(ds.Matrix, hpcnmf.Options{K: 4, MaxIter: 10, Seed: 2, L1W: 1.0, L1H: 1.0})
	if err != nil {
		panic(err)
	}
	zeros := func(d *hpcnmf.Dense) int {
		n := 0
		for _, v := range d.Data {
			if v == 0 {
				n++
			}
		}
		return n
	}
	fmt.Printf("L1 produces sparser W: %v\n", zeros(sparse.W) > zeros(plain.W))
	// Output:
	// L1 produces sparser W: true
}
