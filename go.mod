module hpcnmf

go 1.22
