// Topic modeling on a synthetic bag-of-words corpus — the text-mining
// workload the paper's introduction motivates. Documents are drawn
// from planted latent topics (word distributions over a shared
// vocabulary); NMF on the sparse term-document matrix recovers them.
// The example measures recovery: each planted topic should match one
// learned column of W, and documents should cluster by their dominant
// planted topic.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"hpcnmf"
)

const (
	vocab     = 600 // words
	docs      = 400 // documents
	numTopics = 5   // planted topics
	docLen    = 120 // tokens per document
)

func main() {
	s := rand.New(rand.NewSource(2026))

	// Plant topics: each topic concentrates on its own slice of the
	// vocabulary (with a little shared mass, as real topics have).
	topicWords := make([][]float64, numTopics)
	for t := range topicWords {
		w := make([]float64, vocab)
		lo := t * vocab / numTopics
		hi := (t + 1) * vocab / numTopics
		for v := range w {
			if v >= lo && v < hi {
				w[v] = 1.0 + 4.0*s.Float64() // in-topic words
			} else {
				w[v] = 0.05 * s.Float64() // background
			}
		}
		normalize(w)
		topicWords[t] = w
	}

	// Sample documents: pick a dominant topic, draw tokens.
	var entries []hpcnmf.Coord
	labels := make([]int, docs)
	counts := map[[2]int]float64{}
	for d := 0; d < docs; d++ {
		topic := s.Intn(numTopics)
		labels[d] = topic
		for tok := 0; tok < docLen; tok++ {
			w := sample(topicWords[topic], s)
			counts[[2]int{w, d}]++
		}
	}
	for key, c := range counts {
		entries = append(entries, hpcnmf.Coord{Row: key[0], Col: key[1], Val: c})
	}
	a := hpcnmf.SparseFromCoords(vocab, docs, entries)
	fmt.Printf("corpus: %d words x %d documents, %d nonzeros (density %.3f)\n\n",
		vocab, docs, a.NNZ(), float64(a.NNZ())/float64(vocab*docs))

	// Factorize on a simulated 8-processor cluster. W: word-topic
	// loadings; H: topic-document activations.
	res, err := hpcnmf.RunParallel(hpcnmf.WrapSparse(a), 8, hpcnmf.Options{
		K: numTopics, MaxIter: 25, Tol: 1e-5, Seed: 3, ComputeError: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s converged in %d iterations, relative error %.4f\n\n",
		res.Algorithm, res.Iterations, res.RelErr[len(res.RelErr)-1])

	// Show the top words of each learned topic and match it to the
	// planted topic whose vocabulary slice dominates.
	fmt.Println("learned topics (top-8 word ids -> planted slice they fall in):")
	for t := 0; t < numTopics; t++ {
		top := topWords(res.W, t, 8)
		slice := map[int]int{}
		for _, w := range top {
			slice[w*numTopics/vocab]++
		}
		best, bestN := -1, 0
		for sl, n := range slice {
			if n > bestN {
				best, bestN = sl, n
			}
		}
		fmt.Printf("  topic %d: words %v -> planted topic %d (%d/8 in slice)\n", t, top, best, bestN)
	}

	// Document clustering accuracy: assign each document to its
	// strongest learned topic and measure agreement with the planted
	// labels under the best topic permutation (greedy matching).
	assign := make([]int, docs)
	for d := 0; d < docs; d++ {
		best, bestV := 0, -1.0
		for t := 0; t < numTopics; t++ {
			if v := res.H.At(t, d); v > bestV {
				best, bestV = t, v
			}
		}
		assign[d] = best
	}
	acc := matchedAccuracy(labels, assign, numTopics)
	fmt.Printf("\ndocument clustering accuracy vs planted topics: %.1f%%\n", 100*acc)
	if acc < 0.9 {
		fmt.Println("WARNING: accuracy below 90% — topic recovery degraded")
	}
}

func normalize(w []float64) {
	s := 0.0
	for _, v := range w {
		s += v
	}
	for i := range w {
		w[i] /= s
	}
}

// sample draws an index from an (unnormalized-safe) distribution.
func sample(w []float64, s *rand.Rand) int {
	u := s.Float64()
	acc := 0.0
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// topWords returns the indices of the n largest entries of W's column t.
func topWords(w *hpcnmf.Dense, t, n int) []int {
	idx := make([]int, w.Rows)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return w.At(idx[a], t) > w.At(idx[b], t) })
	return idx[:n]
}

// matchedAccuracy greedily matches learned topics to planted labels
// and returns the fraction of correctly assigned documents.
func matchedAccuracy(labels, assign []int, k int) float64 {
	conf := make([][]int, k)
	for i := range conf {
		conf[i] = make([]int, k)
	}
	for d := range labels {
		conf[assign[d]][labels[d]]++
	}
	usedL, usedP := make([]bool, k), make([]bool, k)
	correct := 0
	for round := 0; round < k; round++ {
		bi, bj, bv := -1, -1, -1
		for i := 0; i < k; i++ {
			if usedL[i] {
				continue
			}
			for j := 0; j < k; j++ {
				if usedP[j] {
					continue
				}
				if conf[i][j] > bv {
					bi, bj, bv = i, j, conf[i][j]
				}
			}
		}
		usedL[bi], usedP[bj] = true, true
		correct += bv
	}
	return float64(correct) / float64(len(labels))
}
