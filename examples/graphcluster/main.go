// Community detection on a directed graph — the paper's sparse
// real-world workload (§6.1.1: "The NMF output of this directed graph
// will help us understand clusters in graphs"). We plant communities
// in a stochastic block model, factorize the sparse adjacency matrix
// on a 2D processor grid (the squarish-sparse case where the paper's
// 2D distribution wins), and recover the communities from the factor
// rows.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpcnmf"
)

const (
	nodes       = 800
	communities = 4
	pIn         = 0.08  // edge probability within a community
	pOut        = 0.004 // edge probability across communities
	procs       = 16
)

func main() {
	s := rand.New(rand.NewSource(7))

	// Stochastic block model with planted communities.
	labels := make([]int, nodes)
	for i := range labels {
		labels[i] = s.Intn(communities)
	}
	var entries []hpcnmf.Coord
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i == j {
				continue
			}
			p := pOut
			if labels[i] == labels[j] {
				p = pIn
			}
			if s.Float64() < p {
				entries = append(entries, hpcnmf.Coord{Row: i, Col: j, Val: 1})
			}
		}
	}
	a := hpcnmf.SparseFromCoords(nodes, nodes, entries)
	fmt.Printf("graph: %d nodes, %d directed edges (density %.4f)\n",
		nodes, a.NNZ(), float64(a.NNZ())/float64(nodes*nodes))

	g := hpcnmf.ChooseGrid(nodes, nodes, procs)
	fmt.Printf("grid for p=%d on the squarish adjacency matrix: %dx%d\n\n", procs, g.PR, g.PC)

	res, err := hpcnmf.RunOnGrid(hpcnmf.WrapSparse(a), g.PR, g.PC, hpcnmf.Options{
		K: communities, MaxIter: 30, Tol: 1e-6, Seed: 17, ComputeError: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d iterations, relative error %.4f\n",
		res.Algorithm, res.Iterations, res.RelErr[len(res.RelErr)-1])

	// Cluster nodes by the dominant component of their W row (out-link
	// profile). Score against the planted labels with greedy matching.
	assign := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		best, bestV := 0, -1.0
		for t := 0; t < communities; t++ {
			if v := res.W.At(i, t); v > bestV {
				best, bestV = t, v
			}
		}
		assign[i] = best
	}
	acc := matchedAccuracy(labels, assign, communities)
	fmt.Printf("\ncommunity recovery accuracy: %.1f%%\n", 100*acc)

	// Show the confusion structure.
	fmt.Println("cluster sizes (learned -> count, planted majority):")
	for t := 0; t < communities; t++ {
		count, major := 0, make([]int, communities)
		for i := range assign {
			if assign[i] == t {
				count++
				major[labels[i]]++
			}
		}
		bi, bv := 0, -1
		for j, v := range major {
			if v > bv {
				bi, bv = j, v
			}
		}
		purity := 0.0
		if count > 0 {
			purity = float64(bv) / float64(count)
		}
		fmt.Printf("  learned %d: %3d nodes, %3.0f%% from planted community %d\n",
			t, count, 100*purity, bi)
	}
	if acc < 0.8 {
		fmt.Println("WARNING: recovery below 80%")
	}
}

// matchedAccuracy greedily matches learned clusters to planted labels.
func matchedAccuracy(labels, assign []int, k int) float64 {
	conf := make([][]int, k)
	for i := range conf {
		conf[i] = make([]int, k)
	}
	for d := range labels {
		conf[assign[d]][labels[d]]++
	}
	usedL, usedP := make([]bool, k), make([]bool, k)
	correct := 0
	for round := 0; round < k; round++ {
		bi, bj, bv := -1, -1, -1
		for i := 0; i < k; i++ {
			if usedL[i] {
				continue
			}
			for j := 0; j < k; j++ {
				if usedP[j] {
					continue
				}
				if conf[i][j] > bv {
					bi, bj, bv = i, j, conf[i][j]
				}
			}
		}
		usedL[bi], usedP[bj] = true, true
		correct += bv
	}
	return float64(correct) / float64(len(labels))
}
