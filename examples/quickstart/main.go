// Quickstart: factorize a small non-negative matrix sequentially and
// in parallel, and confirm the two agree — the minimal end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"

	"hpcnmf"
)

func main() {
	// A small matrix with an exact rank-2 non-negative factorization:
	// rows are mixtures of two "parts" (the classic NMF intuition).
	a := hpcnmf.DenseFromRows([][]float64{
		{1.0, 0.0, 2.0, 1.0, 0.5},
		{0.0, 1.0, 1.0, 0.0, 1.0},
		{2.0, 1.0, 5.0, 2.0, 2.0},
		{1.0, 0.0, 2.0, 1.0, 0.5},
		{0.0, 2.0, 2.0, 0.0, 2.0},
		{3.0, 0.0, 6.0, 3.0, 1.5},
	})

	opts := hpcnmf.Options{
		K:            2,
		MaxIter:      50,
		Tol:          1e-8,
		Seed:         7,
		ComputeError: true,
	}

	// Sequential run.
	seq, err := hpcnmf.Run(hpcnmf.WrapDense(a), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential:  %d iterations, relative error %.2e\n",
		seq.Iterations, seq.RelErr[len(seq.RelErr)-1])

	// The same problem on a simulated 4-processor cluster (HPC-NMF
	// with an automatically chosen grid).
	par, err := hpcnmf.RunParallel(hpcnmf.WrapDense(a), 4, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel p=4: %d iterations, relative error %.2e (%s)\n",
		par.Iterations, par.RelErr[len(par.RelErr)-1], par.Algorithm)
	fmt.Printf("max |W_seq - W_par| = %.2e (identical computation, §6.1.3)\n\n",
		par.W.MaxDiff(seq.W))

	fmt.Println("W (parts):")
	for i := 0; i < par.W.Rows; i++ {
		fmt.Printf("  row %d: ", i)
		for j := 0; j < par.W.Cols; j++ {
			fmt.Printf("%7.3f", par.W.At(i, j))
		}
		fmt.Println()
	}
	fmt.Println("H (activations):")
	for i := 0; i < par.H.Rows; i++ {
		fmt.Printf("  topic %d: ", i)
		for j := 0; j < par.H.Cols; j++ {
			fmt.Printf("%7.3f", par.H.At(i, j))
		}
		fmt.Println()
	}
	table, err := par.Breakdown.Format("modeled")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-iteration cost breakdown (modeled, Edison-like cluster):\n%s", table)
}
