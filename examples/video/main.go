// Video background subtraction — the paper's dense real-world
// workload (§6.1.1). Each RGB frame of a synthetic traffic scene is
// one column of a tall-skinny matrix; a low-rank NMF captures the
// static background, and the residual A − WH isolates the moving
// objects. The tall-skinny shape is exactly the case where the paper
// prescribes a 1D processor grid (pr = p, pc = 1).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"hpcnmf"
)

const (
	width, height = 32, 24
	frames        = 120
	k             = 3 // background rank
	procs         = 8
)

func main() {
	// The library ships the paper's synthetic video generator; here we
	// use the public dataset entry point at a reduced scale, then
	// factorize on a 1D grid as the paper does for tall-skinny input.
	ds := hpcnmf.GenerateDataset("video", 0.6, 99)
	a := ds.Matrix
	m, n := a.Dims()
	fmt.Printf("video matrix: %dx%d (every column is one RGB frame)\n", m, n)

	g := hpcnmf.ChooseGrid(m, n, procs)
	fmt.Printf("chosen grid for p=%d: %dx%d (1D, as §5 prescribes for m/p > n)\n\n", procs, g.PR, g.PC)

	res, err := hpcnmf.RunOnGrid(a, g.PR, g.PC, hpcnmf.Options{
		K: k, MaxIter: 15, Tol: 1e-5, Seed: 5, ComputeError: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d iterations, relative error %.4f\n\n",
		res.Algorithm, res.Iterations, res.RelErr[len(res.RelErr)-1])

	// Foreground energy per frame: ‖a_f − W·h_f‖² — spikes where the
	// moving blobs occupy pixels the rank-k background cannot explain.
	fmt.Println("per-frame foreground energy (residual after background removal):")
	var energies []float64
	for f := 0; f < n; f += n / 20 {
		e := frameResidual(a, res.W, res.H, f)
		energies = append(energies, e)
		bar := strings.Repeat("#", int(math.Min(60, e*4)))
		fmt.Printf("  frame %3d: %7.2f %s\n", f, e, bar)
	}

	// Sanity: the background (reconstruction) should carry most of the
	// pixel energy, and the foreground should be sparse.
	total, fg := 0.0, 0.0
	for f := 0; f < n; f++ {
		fg += frameResidual(a, res.W, res.H, f)
	}
	for _, e := range energies {
		total += e
	}
	_ = total
	fmt.Printf("\nmean foreground energy per frame: %.2f\n", fg/float64(n))
	fmt.Println("(moving rectangles show up as the unexplained residual; the")
	fmt.Println(" static gradient background is absorbed by the rank-3 factors)")
}

// frameResidual computes ‖a_f − W·h_f‖² for one frame column f.
func frameResidual(a hpcnmf.Matrix, w, h *hpcnmf.Dense, f int) float64 {
	m, _ := a.Dims()
	// Reconstruct column f: W (m×k) times h_f (k).
	col := a.Block(0, m, f, f+1)
	dense := colToSlice(col, m)
	res := 0.0
	for i := 0; i < m; i++ {
		rec := 0.0
		for t := 0; t < w.Cols; t++ {
			rec += w.At(i, t) * h.At(t, f)
		}
		d := dense[i] - rec
		res += d * d
	}
	return res
}

// colToSlice extracts a single-column Matrix into a flat slice via
// the MulHt identity A·[1]ᵀ = A for a 1×1 identity factor.
func colToSlice(col hpcnmf.Matrix, m int) []float64 {
	one := hpcnmf.NewDense(1, 1)
	one.Set(0, 0, 1)
	v := col.MulHt(one) // m×1
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		out[i] = v.At(i, 0)
	}
	return out
}
