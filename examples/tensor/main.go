// Non-negative CP tensor decomposition — the extension the paper
// names as future work (§7). A synthetic spatiotemporal tensor
// (location × signal-type × time) built from interpretable rank-one
// components is decomposed sequentially and on a simulated cluster;
// the two runs compute identical factors, mirroring the matrix
// algorithms' §6.1.3 property.
package main

import (
	"fmt"
	"log"

	"hpcnmf"
)

const (
	locations = 40
	signals   = 24
	timesteps = 60
	rank      = 3
)

func main() {
	// Plant three ground-truth components, each a localized pattern:
	// a block of locations × a band of signals × a temporal pulse.
	s := hpcnmf.NewRandomStream(123)
	a := hpcnmf.NewDense(locations, rank)
	b := hpcnmf.NewDense(signals, rank)
	c := hpcnmf.NewDense(timesteps, rank)
	for r := 0; r < rank; r++ {
		for i := r * locations / rank; i < (r+1)*locations/rank; i++ {
			a.Set(i, r, 0.5+s.Float64())
		}
		for j := r * signals / rank; j < (r+1)*signals/rank; j++ {
			b.Set(j, r, 0.5+s.Float64())
		}
		// Temporal pulse: component r active in its own window.
		for k := r * timesteps / rank; k < (r+1)*timesteps/rank; k++ {
			c.Set(k, r, 0.5+s.Float64())
		}
	}
	t := hpcnmf.TensorFromKruskal(a, b, c)
	// Light noise.
	for i := range t.Data {
		t.Data[i] += 0.02 * s.Float64()
	}
	fmt.Printf("tensor: %dx%dx%d, planted CP rank %d\n\n", t.I, t.J, t.K, rank)

	opts := hpcnmf.NCPOptions{Rank: rank, MaxIter: 60, Seed: 11, Tol: 1e-8}
	seq, err := hpcnmf.RunNCP(t, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential NCP:   %d sweeps, relative error %.4f\n",
		seq.Iterations, seq.RelErr[len(seq.RelErr)-1])

	par, err := hpcnmf.RunNCPParallel(t, 4, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel NCP p=4: %d sweeps, relative error %.4f\n",
		par.Iterations, par.RelErr[len(par.RelErr)-1])
	fmt.Printf("max factor difference sequential vs parallel: %.2e\n\n", par.A.MaxDiff(seq.A))

	// Component recovery: each learned temporal factor column should
	// concentrate in one planted window.
	fmt.Println("learned temporal components (mass per planted window):")
	for r := 0; r < rank; r++ {
		var mass [rank]float64
		total := 0.0
		for k := 0; k < timesteps; k++ {
			v := par.C.At(k, r)
			mass[k*rank/timesteps] += v
			total += v
		}
		fmt.Printf("  component %d:", r)
		for w := 0; w < rank; w++ {
			fmt.Printf(" window%d=%4.0f%%", w, 100*mass[w]/total)
		}
		fmt.Println()
	}
}
