// Streaming background subtraction — the live-camera scenario the
// paper describes (§6.1.1): only the last stretch of video is kept,
// and the factorization is adjusted incrementally as frames arrive.
// Frames stream in one at a time; the sliding-window NMF keeps a
// rank-k background model; per-frame foreground energy spikes exactly
// when objects cross the scene — and when the lighting changes, the
// model re-adapts within a window.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"hpcnmf"
)

const (
	width, height = 24, 18
	pixels        = width * height * 3
	window        = 40 // frames retained (the "last minute")
	rank          = 3
)

func main() {
	st, err := hpcnmf.NewStreaming(pixels, hpcnmf.StreamingOptions{
		K: rank, Window: window, RefineSweeps: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := hpcnmf.NewRandomStream(99)

	// Scene state: a static background that brightens halfway through
	// (lighting change), and a car that crosses during two intervals.
	background := make([]float64, pixels)
	for i := range background {
		background[i] = 0.3 + 0.4*float64(i%width)/width
	}
	fmt.Println("frame  foreground-energy  event")
	for f := 0; f < 160; f++ {
		col := hpcnmf.NewDense(pixels, 1)
		brightness := 1.0
		if f >= 80 {
			brightness = 1.3 // lighting change at frame 80
		}
		for i := 0; i < pixels; i++ {
			col.Set(i, 0, clamp(background[i]*brightness+0.01*s.Normal()))
		}
		event := ""
		carCrossing := (f >= 30 && f < 45) || (f >= 120 && f < 135)
		if carCrossing {
			event = "car in frame"
			x := (f * 2) % width
			paintCar(col, x)
		}
		if f == 80 {
			event = "lighting change"
		}
		if err := st.Push(col); err != nil {
			log.Fatal(err)
		}
		if f%5 == 0 || event != "" {
			e := st.ForegroundEnergy(st.Len() - 1)
			bar := strings.Repeat("#", int(math.Min(50, e*8)))
			fmt.Printf("%5d  %17.3f  %-16s %s\n", f, e, event, bar)
		}
	}
	fmt.Printf("\nfinal window fit: relative error %.4f over %d frames\n", st.RelErr(), st.Len())
	fmt.Println("(energy spikes during car crossings; the frame-80 lighting step")
	fmt.Println(" causes a transient that decays as the old regime evicts)")
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// paintCar draws a bright rectangle at column x.
func paintCar(col *hpcnmf.Dense, x int) {
	for dy := 8; dy < 12; dy++ {
		for dx := 0; dx < 5; dx++ {
			px := ((dy*width + (x+dx)%width) * 3)
			col.Set(px, 0, 0.95)
			col.Set(px+1, 0, 0.1)
			col.Set(px+2, 0, 0.1)
		}
	}
}
