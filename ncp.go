package hpcnmf

import (
	"hpcnmf/internal/ncp"
	"hpcnmf/internal/partition"
	"hpcnmf/internal/rng"
)

// Tensor3 is a dense 3-way tensor for non-negative CP decomposition
// (the paper's future-work extension, §7).
type Tensor3 = ncp.Tensor3

// NCPOptions configures a CP decomposition.
type NCPOptions = ncp.Options

// NCPResult reports CP factors and the per-sweep error history.
type NCPResult = ncp.Result

// NewTensor3 returns a zero I×J×K tensor.
func NewTensor3(i, j, k int) *Tensor3 { return ncp.NewTensor3(i, j, k) }

// TensorFromKruskal materializes the rank-r tensor [[A, B, C]].
func TensorFromKruskal(a, b, c *Dense) *Tensor3 { return ncp.FromKruskal(a, b, c) }

// RunNCP decomposes T ≈ [[A, B, C]] with non-negative factors via
// alternating NNLS sweeps (ANLS-BPP by default).
func RunNCP(t *Tensor3, opts NCPOptions) (*NCPResult, error) { return ncp.Run(t, opts) }

// RunNCPParallel runs the decomposition on p simulated ranks with the
// tensor distributed in mode-0 slabs; with a shared seed it computes
// the same iterates as RunNCP.
func RunNCPParallel(t *Tensor3, p int, opts NCPOptions) (*NCPResult, error) {
	return ncp.RunParallel(t, p, opts)
}

// BalanceReport summarizes nonzero load imbalance of a 2D block
// distribution before and after random-permutation balancing.
type BalanceReport = partition.Report

// AnalyzeBalance measures the per-block nonzero imbalance of a sparse
// matrix on the grid chosen for p processors, and the improvement a
// random row/column permutation would give (§7: load balancing the
// 2D distribution of skewed sparse matrices).
func AnalyzeBalance(a *CSR, p int, seed uint64) BalanceReport {
	g := ChooseGrid(a.Rows, a.Cols, p)
	return partition.Analyze(a, g, seed)
}

// BalanceSparse applies random row and column permutations to spread
// heavy rows/columns across grid blocks. It returns the permuted
// matrix and the row/column mappings (Forward[old] = new) needed to
// map factor matrices back: row i of the original corresponds to row
// rowMap[i] of a factorization of the permuted matrix.
func BalanceSparse(a *CSR, seed uint64) (balanced *CSR, rowMap, colMap []int) {
	b, rp, cp := partition.Balance(a, seed)
	return b, rp.Forward, cp.Forward
}

// NewRandomStream exposes the library's deterministic PRNG for
// callers who want reproducible synthetic data compatible with the
// generators in this module.
func NewRandomStream(seed uint64) *rng.Stream { return rng.New(seed) }
